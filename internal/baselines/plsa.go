// Package baselines implements the four comparison methods of the paper's
// §5.2: NetPLSA (Mei et al., WWW'08) and iTopicModel (Sun et al., ICDM'09)
// for the text networks, and k-means (with neighbor-mean interpolation) and
// a Shiga-style spectral method combining modularity with attribute
// similarity for the numeric networks.
//
// As the paper prescribes, none of these leverages typed links: every
// relation is treated as equally important (strength 1).
package baselines

import (
	"fmt"
	"math/rand"

	"genclus/internal/hin"
	"genclus/internal/stats"
)

// Result is a baseline clustering outcome. Theta is always populated; for
// the hard methods (k-means, spectral) it is the one-hot encoding of Labels,
// matching §5.2.2's remark that those baselines "can only output hard
// clusters".
type Result struct {
	Theta  [][]float64
	Labels []int
}

// PLSAOptions configures the two topic-model baselines.
type PLSAOptions struct {
	K         int
	Attribute string  // categorical attribute to model; "" = first categorical
	Iters     int     // EM iterations
	Lambda    float64 // network coupling weight (meaning differs per method)
	Seed      int64
	SmoothEta float64 // Laplace smoothing for β
	Epsilon   float64 // Θ floor
}

// DefaultPLSAOptions mirrors the defaults used in the experiments.
func DefaultPLSAOptions(k int) PLSAOptions {
	return PLSAOptions{K: k, Iters: 60, Lambda: 0.5, Seed: 1, SmoothEta: 1e-3, Epsilon: 1e-9}
}

func (o PLSAOptions) validate(net *hin.Network) (attr int, err error) {
	if net == nil {
		return 0, fmt.Errorf("baselines: nil network")
	}
	if o.K < 2 {
		return 0, fmt.Errorf("baselines: K = %d, want ≥ 2", o.K)
	}
	if o.Iters < 1 {
		return 0, fmt.Errorf("baselines: Iters = %d, want ≥ 1", o.Iters)
	}
	if o.Lambda < 0 || o.Lambda > 1 {
		return 0, fmt.Errorf("baselines: Lambda = %v, want in [0,1]", o.Lambda)
	}
	attr = -1
	if o.Attribute != "" {
		a, ok := net.AttrID(o.Attribute)
		if !ok {
			return 0, fmt.Errorf("baselines: attribute %q not in network", o.Attribute)
		}
		if net.Attr(a).Kind != hin.Categorical {
			return 0, fmt.Errorf("baselines: attribute %q is not categorical", o.Attribute)
		}
		attr = a
	} else {
		for a := 0; a < net.NumAttrs(); a++ {
			if net.Attr(a).Kind == hin.Categorical {
				attr = a
				break
			}
		}
		if attr < 0 {
			return 0, fmt.Errorf("baselines: network has no categorical attribute")
		}
	}
	return attr, nil
}

// plsaState carries the shared PLSA machinery.
type plsaState struct {
	net   *hin.Network
	attr  int
	k     int
	opts  PLSAOptions
	theta [][]float64
	beta  [][]float64
}

func newPLSAState(net *hin.Network, attr int, opts PLSAOptions) *plsaState {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := net.NumObjects()
	vocab := net.Attr(attr).VocabSize
	s := &plsaState{net: net, attr: attr, k: opts.K, opts: opts}
	s.theta = make([][]float64, n)
	for v := 0; v < n; v++ {
		s.theta[v] = stats.SampleSimplexUniform(rng, opts.K)
		stats.FloorAndNormalize(s.theta[v], opts.Epsilon)
	}
	s.beta = make([][]float64, opts.K)
	for k := range s.beta {
		row := make([]float64, vocab)
		for l := range row {
			row[l] = 1 + 0.5*rng.Float64()
		}
		stats.Normalize(row)
		s.beta[k] = row
	}
	return s
}

// plsaEStep computes, for object v, the attribute evidence vector
// Σ_l c_vl·p(z = k | v, l) and accumulates β statistics. Returns the total
// term mass (0 when v has no text).
func (s *plsaState) plsaEvidence(v int, out []float64, betaStat [][]float64) float64 {
	tcs := s.net.TermCounts(s.attr, v)
	if len(tcs) == 0 {
		return 0
	}
	resp := make([]float64, s.k)
	var mass float64
	for _, tc := range tcs {
		var sum float64
		for k := 0; k < s.k; k++ {
			resp[k] = s.theta[v][k] * s.beta[k][tc.Term]
			sum += resp[k]
		}
		if sum <= 0 {
			continue
		}
		inv := tc.Count / sum
		for k := 0; k < s.k; k++ {
			r := resp[k] * inv
			out[k] += r
			if betaStat != nil {
				betaStat[k][tc.Term] += r
			}
		}
		mass += tc.Count
	}
	return mass
}

func (s *plsaState) updateBeta(betaStat [][]float64) {
	vocab := len(s.beta[0])
	for k := 0; k < s.k; k++ {
		var sum float64
		for l := 0; l < vocab; l++ {
			sum += betaStat[k][l] + s.opts.SmoothEta
		}
		if sum <= 0 {
			continue
		}
		for l := 0; l < vocab; l++ {
			s.beta[k][l] = (betaStat[k][l] + s.opts.SmoothEta) / sum
		}
	}
}

func (s *plsaState) newBetaStat() [][]float64 {
	vocab := len(s.beta[0])
	st := make([][]float64, s.k)
	for k := range st {
		st[k] = make([]float64, vocab)
	}
	return st
}

// neighborAverage returns the weight-normalized average membership of v's
// graph neighbors (both directions, all relations treated equally — the
// homogeneous-links assumption the paper imposes on the baselines). Returns
// false when v has no neighbors.
func neighborAverage(net *hin.Network, theta [][]float64, v int, out []float64) bool {
	for i := range out {
		out[i] = 0
	}
	var wSum float64
	for _, e := range net.OutEdges(v) {
		for i := range out {
			out[i] += e.Weight * theta[e.To][i]
		}
		wSum += e.Weight
	}
	from, _, weights := net.InLinks(v)
	for j, u := range from {
		w := weights[j]
		for i := range out {
			out[i] += w * theta[u][i]
		}
		wSum += w
	}
	if wSum == 0 {
		return false
	}
	for i := range out {
		out[i] /= wSum
	}
	return true
}

// NetPLSA implements the network-regularized PLSA of Mei et al. (WWW'08):
// standard PLSA EM steps interleaved with a graph smoothing step
// θ_v ← (1−λ)·θ_v + λ·avg_{u∼v} θ_u that implements the harmonic
// regularizer. Objects without text keep their previous θ in the PLSA step
// and only move through smoothing.
func NetPLSA(net *hin.Network, opts PLSAOptions) (*Result, error) {
	attr, err := opts.validate(net)
	if err != nil {
		return nil, err
	}
	s := newPLSAState(net, attr, opts)
	n := net.NumObjects()
	evidence := make([]float64, opts.K)
	smooth := make([]float64, opts.K)

	for it := 0; it < opts.Iters; it++ {
		betaStat := s.newBetaStat()
		newTheta := make([][]float64, n)
		for v := 0; v < n; v++ {
			for i := range evidence {
				evidence[i] = 0
			}
			mass := s.plsaEvidence(v, evidence, betaStat)
			row := make([]float64, opts.K)
			if mass > 0 {
				copy(row, evidence)
				stats.FloorAndNormalize(row, opts.Epsilon)
			} else {
				copy(row, s.theta[v]) // no text: PLSA has no opinion
			}
			newTheta[v] = row
		}
		s.updateBeta(betaStat)
		// Graph regularization sweep over the *new* memberships.
		for v := 0; v < n; v++ {
			if neighborAverage(net, newTheta, v, smooth) {
				for i := range newTheta[v] {
					newTheta[v][i] = (1-opts.Lambda)*newTheta[v][i] + opts.Lambda*smooth[i]
				}
				stats.FloorAndNormalize(newTheta[v], opts.Epsilon)
			}
		}
		s.theta = newTheta
	}
	return resultFromTheta(s.theta), nil
}

// ITopicModel implements the network-integrated topic model of Sun et al.
// (ICDM'09) in the formulation the GenClus paper compares against: the
// membership update blends the PLSA evidence with the (unweighted-strength)
// neighbor memberships inside the same M-step —
//
//	θ_vk ∝ Σ_l c_vl·p(z=k|v,l) + λ·Σ_{e∼v} w(e)·θ_uk
//
// which is exactly GenClus's Eq. 10 with every γ(r) frozen at λ. Objects
// without text are set to the pure neighbor average.
func ITopicModel(net *hin.Network, opts PLSAOptions) (*Result, error) {
	attr, err := opts.validate(net)
	if err != nil {
		return nil, err
	}
	if opts.Lambda == 0 {
		opts.Lambda = 1
	}
	s := newPLSAState(net, attr, opts)
	n := net.NumObjects()
	row := make([]float64, opts.K)

	for it := 0; it < opts.Iters; it++ {
		betaStat := s.newBetaStat()
		newTheta := make([][]float64, n)
		for v := 0; v < n; v++ {
			for i := range row {
				row[i] = 0
			}
			s.plsaEvidence(v, row, betaStat)
			// Link term with uniform strengths.
			for _, e := range net.OutEdges(v) {
				g := opts.Lambda * e.Weight
				tu := s.theta[e.To]
				for i := range row {
					row[i] += g * tu[i]
				}
			}
			dst := make([]float64, opts.K)
			var mass float64
			for _, x := range row {
				mass += x
			}
			if mass > 0 {
				copy(dst, row)
				stats.FloorAndNormalize(dst, opts.Epsilon)
			} else {
				copy(dst, s.theta[v])
			}
			newTheta[v] = dst
		}
		s.updateBeta(betaStat)
		s.theta = newTheta
	}
	return resultFromTheta(s.theta), nil
}

func resultFromTheta(theta [][]float64) *Result {
	labels := make([]int, len(theta))
	for v, row := range theta {
		labels[v] = stats.ArgMax(row)
	}
	return &Result{Theta: theta, Labels: labels}
}

// oneHot converts hard labels into a one-hot membership matrix (with an ε
// floor so downstream similarity functions taking logs stay finite).
func oneHot(labels []int, k int, eps float64) [][]float64 {
	theta := make([][]float64, len(labels))
	for v, lab := range labels {
		row := make([]float64, k)
		for i := range row {
			row[i] = eps
		}
		if lab >= 0 && lab < k {
			row[lab] = 1
		}
		stats.Normalize(row)
		theta[v] = row
	}
	return theta
}
