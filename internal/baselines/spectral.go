package baselines

import (
	"fmt"
	"math"

	"genclus/internal/hin"
	"genclus/internal/linalg"
)

// SpectralOptions configures the SpectralCombine baseline.
type SpectralOptions struct {
	K int
	// NetworkWeight ∈ [0,1] balances modularity vs attribute similarity
	// (the paper sets both parts to equal weights → 0.5).
	NetworkWeight float64
	Seed          int64
	KMeans        KMeansOptions
}

// DefaultSpectralOptions mirrors §5.2.1: equal weights for the modularity
// and attribute parts.
func DefaultSpectralOptions(k int) SpectralOptions {
	return SpectralOptions{K: k, NetworkWeight: 0.5, Seed: 1, KMeans: DefaultKMeansOptions(k)}
}

// SpectralCombine implements the Shiga et al. (KDD'07)-style baseline the
// paper describes: a combined similarity matrix
//
//	S = w·B̂ + (1−w)·Ĝ
//
// where B̂ is the (max-abs normalized) Newman modularity matrix of the
// symmetrized, relation-agnostic adjacency, and Ĝ the (max-abs normalized)
// Gram matrix of the standardized interpolated features (the spectral
// relaxation of k-means, Zha et al.). The top-K eigenvectors of S embed the
// objects; k-means on the (row-normalized) embedding yields hard labels.
//
// features must have one row per network object — typically the output of
// InterpolateNumeric + Standardize.
func SpectralCombine(net *hin.Network, features [][]float64, opts SpectralOptions) (*Result, error) {
	if net == nil {
		return nil, fmt.Errorf("baselines: nil network")
	}
	n := net.NumObjects()
	if len(features) != n {
		return nil, fmt.Errorf("baselines: %d feature rows for %d objects", len(features), n)
	}
	if opts.K < 2 || opts.K > n {
		return nil, fmt.Errorf("baselines: spectral K = %d out of range 2..%d", opts.K, n)
	}
	if opts.NetworkWeight < 0 || opts.NetworkWeight > 1 {
		return nil, fmt.Errorf("baselines: NetworkWeight = %v, want in [0,1]", opts.NetworkWeight)
	}

	combined := linalg.NewMatrix(n, n)

	// Modularity part: B_ij = A_ij − k_i·k_j/(2m) over the symmetrized
	// weighted adjacency (all relations pooled — the homogeneity assumption
	// imposed on baselines).
	if opts.NetworkWeight > 0 {
		adj := linalg.NewMatrix(n, n)
		deg := make([]float64, n)
		var twoM float64
		for _, e := range net.Edges() {
			// Symmetrize: half weight in each direction.
			w := e.Weight / 2
			adj.Add(e.From, e.To, w)
			adj.Add(e.To, e.From, w)
			deg[e.From] += w
			deg[e.To] += w
			twoM += e.Weight
		}
		if twoM > 0 {
			mod := linalg.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					mod.Set(i, j, adj.At(i, j)-deg[i]*deg[j]/twoM)
				}
			}
			if mx := mod.MaxAbs(); mx > 0 {
				mod.Scale(opts.NetworkWeight / mx)
			}
			combined = combined.AddMatrix(mod)
		}
	}

	// Attribute part: Gram matrix of the feature rows.
	if opts.NetworkWeight < 1 {
		gram := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var dot float64
				for d := range features[i] {
					dot += features[i][d] * features[j][d]
				}
				gram.Set(i, j, dot)
				gram.Set(j, i, dot)
			}
		}
		if mx := gram.MaxAbs(); mx > 0 {
			gram.Scale((1 - opts.NetworkWeight) / mx)
		}
		combined = combined.AddMatrix(gram)
	}

	// Top-K eigenvectors → spectral embedding. Following the spectral
	// relaxation of k-means (Zha et al.), each eigenvector is scaled by
	// √max(λ, 0) — the PCA-style embedding — rather than row-normalized
	// (row normalization would collapse collinear cluster means, exactly
	// the geometry of the weather Setting 1 diagonal).
	vals, vecs, err := linalg.TopEigen(combined, opts.K, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("baselines: spectral eigendecomposition: %w", err)
	}
	scale := make([]float64, opts.K)
	for k := 0; k < opts.K; k++ {
		if vals[k] > 0 {
			scale[k] = math.Sqrt(vals[k])
		}
	}
	embed := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, opts.K)
		for k := 0; k < opts.K; k++ {
			row[k] = vecs.At(v, k) * scale[k]
		}
		embed[v] = row
	}
	km := opts.KMeans
	km.K = opts.K
	km.Seed = opts.Seed
	return KMeans(embed, km)
}
