package baselines

import (
	"math"
	"math/rand"
	"testing"

	"genclus/internal/datagen"
	"genclus/internal/eval"
	"genclus/internal/hin"
)

// textNetwork builds a two-topic document network: disjoint vocabulary
// blocks, within-topic citation links, plus optional textless hub objects.
func textNetwork(t *testing.T, perTopic int, withHubs bool, seed int64) (*hin.Network, map[int]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 20})
	n := 2 * perTopic
	ids := make([]string, n)
	labels := make(map[int]int)
	for i := 0; i < n; i++ {
		ids[i] = "d" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		idx := b.AddObject(ids[i], "doc")
		topic := i / perTopic
		labels[idx] = topic
		for w := 0; w < 12; w++ {
			b.AddTermCount(ids[i], "text", topic*10+rng.Intn(10), 1)
		}
	}
	for i := 0; i < n; i++ {
		topic := i / perTopic
		for c := 0; c < 2; c++ {
			j := topic*perTopic + rng.Intn(perTopic)
			if j != i {
				b.AddLink(ids[i], ids[j], "cites", 1)
			}
		}
	}
	if withHubs {
		h0 := b.AddObject("hub0", "hub")
		h1 := b.AddObject("hub1", "hub")
		labels[h0] = 0
		labels[h1] = 1
		for i := 0; i < 4; i++ {
			b.AddLink("hub0", ids[i], "touches", 1)
			b.AddLink(ids[i], "hub0", "touched_by", 1)
			b.AddLink("hub1", ids[perTopic+i], "touches", 1)
			b.AddLink(ids[perTopic+i], "hub1", "touched_by", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, labels
}

func subsetNMI(t *testing.T, labels map[int]int, pred []int) float64 {
	t.Helper()
	objs := make([]int, 0, len(labels))
	for v := range labels {
		objs = append(objs, v)
	}
	nmi, err := eval.NMIOnSubset(objs, pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	return nmi
}

func TestNetPLSARecoversTopics(t *testing.T) {
	net, labels := textNetwork(t, 30, false, 3)
	res, err := NetPLSA(net, DefaultPLSAOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if nmi := subsetNMI(t, labels, res.Labels); nmi < 0.8 {
		t.Errorf("NetPLSA NMI = %v on separable topics", nmi)
	}
}

func TestITopicModelRecoversTopics(t *testing.T) {
	net, labels := textNetwork(t, 30, false, 4)
	res, err := ITopicModel(net, DefaultPLSAOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if nmi := subsetNMI(t, labels, res.Labels); nmi < 0.8 {
		t.Errorf("iTopicModel NMI = %v on separable topics", nmi)
	}
}

func TestITopicModelHandlesTextlessObjects(t *testing.T) {
	// iTopicModel folds neighbor memberships into the same update, so
	// textless hubs should follow their group.
	net, labels := textNetwork(t, 20, true, 5)
	res, err := ITopicModel(net, DefaultPLSAOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := net.IndexOf("hub0")
	h1, _ := net.IndexOf("hub1")
	if res.Labels[h0] == res.Labels[h1] {
		t.Error("hubs of different topics should separate")
	}
	d0, _ := net.IndexOf("da0")
	if res.Labels[h0] != res.Labels[d0] {
		t.Errorf("hub0 label %d should match its documents' label %d", res.Labels[h0], res.Labels[d0])
	}
	_ = labels
}

func TestPLSAThetaValid(t *testing.T) {
	net, _ := textNetwork(t, 15, true, 6)
	for name, run := range map[string]func(*hin.Network, PLSAOptions) (*Result, error){
		"NetPLSA": NetPLSA, "iTopicModel": ITopicModel,
	} {
		res, err := run(net, DefaultPLSAOptions(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Theta) != net.NumObjects() || len(res.Labels) != net.NumObjects() {
			t.Fatalf("%s: result shape wrong", name)
		}
		for v, row := range res.Theta {
			var sum float64
			for _, x := range row {
				if x <= 0 || math.IsNaN(x) {
					t.Fatalf("%s: θ[%d] = %v", name, v, row)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: θ[%d] sums to %v", name, v, sum)
			}
		}
	}
}

func TestPLSAOptionValidation(t *testing.T) {
	net, _ := textNetwork(t, 5, false, 7)
	bad := []PLSAOptions{
		{K: 1, Iters: 10, Lambda: 0.5},
		{K: 2, Iters: 0, Lambda: 0.5},
		{K: 2, Iters: 10, Lambda: -0.1},
		{K: 2, Iters: 10, Lambda: 1.5},
		{K: 2, Iters: 10, Lambda: 0.5, Attribute: "ghost"},
	}
	for i, o := range bad {
		if _, err := NetPLSA(net, o); err == nil {
			t.Errorf("options %d should fail", i)
		}
	}
	if _, err := NetPLSA(nil, DefaultPLSAOptions(2)); err == nil {
		t.Error("nil network should fail")
	}
	// Numeric-only network has no categorical attribute.
	nb := hin.NewBuilder()
	nb.DeclareAttribute(hin.AttrSpec{Name: "x", Kind: hin.Numeric})
	nb.AddObject("a", "t")
	numNet, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NetPLSA(numNet, DefaultPLSAOptions(2)); err == nil {
		t.Error("no categorical attribute should fail")
	}
	// Attribute of wrong kind.
	if _, err := NetPLSA(numNet, func() PLSAOptions { o := DefaultPLSAOptions(2); o.Attribute = "x"; return o }()); err == nil {
		t.Error("numeric attribute name should fail for PLSA")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var points [][]float64
	var truth []int
	for i := 0; i < 60; i++ {
		blob := i % 3
		center := []float64{0, 0}
		switch blob {
		case 1:
			center = []float64{10, 0}
		case 2:
			center = []float64{0, 10}
		}
		points = append(points, []float64{center[0] + 0.3*rng.NormFloat64(), center[1] + 0.3*rng.NormFloat64()})
		truth = append(truth, blob)
	}
	res, err := KMeans(points, DefaultKMeansOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := eval.NMI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.99 {
		t.Errorf("k-means NMI on separated blobs = %v", nmi)
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	if _, err := KMeans(nil, DefaultKMeansOptions(2)); err == nil {
		t.Error("empty points should fail")
	}
	if _, err := KMeans(pts, DefaultKMeansOptions(1)); err == nil {
		t.Error("K=1 should fail")
	}
	if _, err := KMeans(pts, DefaultKMeansOptions(4)); err == nil {
		t.Error("K>n should fail")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, DefaultKMeansOptions(2)); err == nil {
		t.Error("ragged points should fail")
	}
	bad := DefaultKMeansOptions(2)
	bad.Iters = 0
	if _, err := KMeans(pts, bad); err == nil {
		t.Error("zero iters should fail")
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// All-identical points: must terminate and produce valid labels.
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	res, err := KMeans(pts, DefaultKMeansOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l < 0 || l >= 2 {
			t.Fatal("label out of range")
		}
	}
}

func TestInterpolateNumeric(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "temp", Kind: hin.Numeric})
	b.DeclareAttribute(hin.AttrSpec{Name: "precip", Kind: hin.Numeric})
	b.AddObject("t1", "T")
	b.AddObject("t2", "T")
	b.AddObject("p1", "P")
	b.AddNumeric("t1", "temp", 10)
	b.AddNumeric("t2", "temp", 20)
	b.AddNumeric("p1", "precip", 3)
	b.AddLink("t1", "p1", "near", 1)
	b.AddLink("p1", "t1", "near", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	feats, err := InterpolateNumeric(net, []string{"temp", "precip"})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := net.IndexOf("t1")
	t2, _ := net.IndexOf("t2")
	p1, _ := net.IndexOf("p1")
	// t1: own temp 10; precip from neighbor p1 = 3.
	if feats[t1][0] != 10 || feats[t1][1] != 3 {
		t.Errorf("t1 features = %v", feats[t1])
	}
	// p1: temp from neighbor t1 = 10; own precip 3.
	if feats[p1][0] != 10 || feats[p1][1] != 3 {
		t.Errorf("p1 features = %v", feats[p1])
	}
	// t2 is isolated: temp = own 20; precip falls back to global mean 3.
	if feats[t2][0] != 20 || feats[t2][1] != 3 {
		t.Errorf("t2 features = %v", feats[t2])
	}
}

func TestInterpolateNumericErrors(t *testing.T) {
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 3})
	b.AddObject("x", "t")
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InterpolateNumeric(net, []string{"ghost"}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := InterpolateNumeric(net, []string{"text"}); err == nil {
		t.Error("categorical attribute should fail")
	}
	if _, err := InterpolateNumeric(net, nil); err == nil {
		t.Error("no attributes should fail")
	}
	if _, err := InterpolateNumeric(nil, []string{"x"}); err == nil {
		t.Error("nil network should fail")
	}
}

func TestStandardize(t *testing.T) {
	pts := [][]float64{{1, 5}, {3, 5}, {5, 5}}
	Standardize(pts)
	// Column 0: mean 3, std sqrt(8/3).
	var mean0 float64
	for _, p := range pts {
		mean0 += p[0]
	}
	if math.Abs(mean0) > 1e-12 {
		t.Errorf("column 0 not centered: %v", mean0)
	}
	// Constant column stays at 0 (centered, not divided).
	for _, p := range pts {
		if p[1] != 0 {
			t.Errorf("constant column should be centered to 0, got %v", p[1])
		}
	}
	if Standardize(nil) != nil {
		t.Error("nil passthrough")
	}
}

func TestSpectralCombineOnWeather(t *testing.T) {
	ds, err := datagen.Weather(datagen.WeatherSetting1(60, 60, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := InterpolateNumeric(ds.Net, []string{datagen.AttrTemperature, datagen.AttrPrecipitation})
	if err != nil {
		t.Fatal(err)
	}
	Standardize(feats)
	res, err := SpectralCombine(ds.Net, feats, DefaultSpectralOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]int, 0, len(ds.Labels))
	for v := range ds.Labels {
		objs = append(objs, v)
	}
	nmi, err := eval.NMIOnSubset(objs, res.Labels, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	// Setting 1 is the easy configuration: spectral should do clearly better
	// than chance (4 clusters, random ≈ 0). It still trails GenClus — the
	// ring-shaped communities suit modularity poorly, which is exactly the
	// paper's point.
	if nmi < 0.2 {
		t.Errorf("SpectralCombine NMI = %v on easy weather setting", nmi)
	}
}

func TestSpectralValidation(t *testing.T) {
	b := hin.NewBuilder()
	b.AddObject("a", "t")
	b.AddObject("b", "t")
	b.AddObject("c", "t")
	b.AddLink("a", "b", "r", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]float64{{1}, {2}, {3}}
	if _, err := SpectralCombine(nil, feats, DefaultSpectralOptions(2)); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := SpectralCombine(net, feats[:2], DefaultSpectralOptions(2)); err == nil {
		t.Error("feature-count mismatch should fail")
	}
	bad := DefaultSpectralOptions(2)
	bad.NetworkWeight = 2
	if _, err := SpectralCombine(net, feats, bad); err == nil {
		t.Error("NetworkWeight > 1 should fail")
	}
	if _, err := SpectralCombine(net, feats, DefaultSpectralOptions(5)); err == nil {
		t.Error("K > n should fail")
	}
}

func TestOneHot(t *testing.T) {
	theta := oneHot([]int{0, 1, 2}, 3, 1e-9)
	for v, row := range theta {
		var sum float64
		best := 0
		for k, x := range row {
			sum += x
			if x > row[best] {
				best = k
			}
		}
		if math.Abs(sum-1) > 1e-9 || best != v {
			t.Errorf("oneHot row %d = %v", v, row)
		}
	}
}

func TestKMeansInterpolatedWeatherBeatsChance(t *testing.T) {
	ds, err := datagen.Weather(datagen.WeatherSetting1(80, 40, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := InterpolateNumeric(ds.Net, []string{datagen.AttrTemperature, datagen.AttrPrecipitation})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(feats, DefaultKMeansOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]int, 0, len(ds.Labels))
	for v := range ds.Labels {
		objs = append(objs, v)
	}
	nmi, err := eval.NMIOnSubset(objs, res.Labels, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.3 {
		t.Errorf("k-means NMI = %v on easy weather setting", nmi)
	}
}
