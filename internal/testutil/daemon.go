// Package testutil is the subprocess harness behind the daemon-level
// integration suites (daemon_recovery_test.go, replication_multinode_test.go):
// it builds the real genclusd binary once per test process, starts daemons on
// scoped ports and data dirs, and gives tests the fault-injection verbs the
// suites are built from — SIGKILL, restart on the same state, wait-healthy.
//
// Daemon logs are captured per process; set GENCLUSD_TEST_LOG_DIR to also
// tee each daemon's output to <dir>/<name>.log (CI uploads these as
// artifacts when a run fails).
package testutil

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// BuildDaemon compiles cmd/genclusd once per test process and returns the
// binary path. Every caller shares the same build, so a multi-node suite
// pays the compile exactly once.
func BuildDaemon(tb testing.TB) string {
	tb.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "genclusd-test-*")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "genclusd")
		// The package path (not a file path) keeps the build working from
		// any test package's working directory within the module.
		cmd := exec.Command("go", "build", "-o", bin, "genclus/cmd/genclusd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build genclusd: %w\n%s", err, out)
			return
		}
		buildBin = bin
	})
	if buildErr != nil {
		tb.Fatal(buildErr)
	}
	return buildBin
}

// FreePort reserves a 127.0.0.1 port and frees it for a daemon to bind.
// The unlikely race of something else grabbing it in between fails loudly
// in StartDaemon's health wait.
func FreePort(tb testing.TB) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Options configures a daemon under test. Zero values get scoped defaults.
type Options struct {
	// Name labels the daemon in failure output and log artifacts
	// (default "genclusd").
	Name string
	// Addr is the listen address (default: a fresh FreePort).
	Addr string
	// DataDir is the persistence root passed as -data-dir; empty runs the
	// daemon memory-only.
	DataDir string
	// Args are extra genclusd flags appended after -addr/-data-dir
	// (e.g. "-replica-of", primaryURL).
	Args []string
}

// Daemon is one live genclusd subprocess. Kill/Restart/WaitHealthy are the
// fault-injection verbs; the zero of everything else is managed by
// StartDaemon.
type Daemon struct {
	tb   testing.TB
	bin  string
	opts Options
	logs *teeBuffer

	mu  sync.Mutex
	cmd *exec.Cmd
}

// StartDaemon builds genclusd (cached), launches it with the given options,
// waits for /healthz, and registers a kill on test cleanup. The daemon's
// address and data dir stay fixed across Restart, which is what makes
// crash-recovery suites possible.
func StartDaemon(tb testing.TB, opts Options) *Daemon {
	tb.Helper()
	if opts.Name == "" {
		opts.Name = "genclusd"
	}
	if opts.Addr == "" {
		opts.Addr = FreePort(tb)
	}
	d := &Daemon{
		tb:   tb,
		bin:  BuildDaemon(tb),
		opts: opts,
		logs: newTeeBuffer(tb, opts.Name),
	}
	tb.Cleanup(func() { d.stop() })
	d.start()
	d.WaitHealthy(30 * time.Second)
	return d
}

// URL is the daemon's base URL for clients.
func (d *Daemon) URL() string { return "http://" + d.opts.Addr }

// Addr is the daemon's listen address.
func (d *Daemon) Addr() string { return d.opts.Addr }

// Logs returns everything the current and previous incarnations of the
// daemon wrote to stdout/stderr.
func (d *Daemon) Logs() string { return d.logs.String() }

func (d *Daemon) start() {
	d.tb.Helper()
	args := []string{"-addr", d.opts.Addr, "-workers", "1"}
	if d.opts.DataDir != "" {
		args = append(args, "-data-dir", d.opts.DataDir)
	}
	args = append(args, d.opts.Args...)
	cmd := exec.Command(d.bin, args...)
	cmd.Stdout = d.logs
	cmd.Stderr = d.logs
	if err := cmd.Start(); err != nil {
		d.tb.Fatalf("start %s: %v", d.opts.Name, err)
	}
	d.mu.Lock()
	d.cmd = cmd
	d.mu.Unlock()
}

func (d *Daemon) stop() {
	d.mu.Lock()
	cmd := d.cmd
	d.cmd = nil
	d.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
}

// Kill SIGKILLs the daemon — no shutdown path runs — and reaps it. It
// fails the test if the process somehow exited cleanly.
func (d *Daemon) Kill() {
	d.tb.Helper()
	d.mu.Lock()
	cmd := d.cmd
	d.cmd = nil
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		d.tb.Fatalf("%s: Kill on a daemon that is not running", d.opts.Name)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		d.tb.Fatal(err)
	}
	state, err := cmd.Process.Wait()
	if err != nil {
		d.tb.Fatal(err)
	}
	if state.Success() {
		d.tb.Fatalf("%s: SIGKILLed daemon exited cleanly?", d.opts.Name)
	}
}

// Restart launches a fresh process on the same address, data dir, and args,
// and waits for it to become healthy. Call after Kill to drive a
// crash-recovery cycle.
func (d *Daemon) Restart() {
	d.tb.Helper()
	d.start()
	d.WaitHealthy(30 * time.Second)
}

// WaitHealthy polls GET /healthz until it answers 200 or the timeout
// expires (failing the test with the daemon's logs).
func (d *Daemon) WaitHealthy(timeout time.Duration) {
	d.tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.URL()+"/healthz", nil)
		if err != nil {
			cancel()
			d.tb.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			d.tb.Fatalf("%s on %s never became healthy; logs:\n%s", d.opts.Name, d.opts.Addr, d.Logs())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// teeBuffer collects a daemon's output, optionally teeing it to
// $GENCLUSD_TEST_LOG_DIR/<name>.log for CI artifact upload. Safe for the
// concurrent writes of a process being restarted while the old one drains.
type teeBuffer struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	file *os.File
}

func newTeeBuffer(tb testing.TB, name string) *teeBuffer {
	t := &teeBuffer{}
	if dir := os.Getenv("GENCLUSD_TEST_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			// O_APPEND so a name reused across tests keeps every run's logs.
			f, err := os.OpenFile(filepath.Join(dir, name+".log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err == nil {
				t.file = f
				tb.Cleanup(func() { f.Close() })
			}
		}
	}
	return t
}

func (t *teeBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.file != nil {
		t.file.Write(p)
	}
	return t.buf.Write(p)
}

func (t *teeBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.String()
}
