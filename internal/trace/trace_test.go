package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("NewSpanContext returned an invalid context")
	}
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q is not version-00 W3C layout", tp)
	}
	got, ok := Parse(tp)
	if !ok {
		t.Fatalf("Parse(%q) failed", tp)
	}
	if got != sc {
		t.Fatalf("round trip changed the context: %+v != %+v", got, sc)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc",
		// version 01
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		// zero trace id
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		// zero span id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		// non-hex trace id
		"00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",
		// missing separator
		"00-0af7651916cd43dd8448eb211c80319c.b7ad6b7169203331-01",
		// non-hex flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		// trailing garbage
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x",
	} {
		if sc, ok := Parse(bad); ok || sc.Valid() {
			t.Errorf("Parse(%q) accepted a malformed header", bad)
		}
	}
	// Flags other than 01 are valid per spec (ignored).
	if _, ok := Parse("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok {
		t.Error("Parse rejected flags 00")
	}
}

func TestParentAdoptsTraceID(t *testing.T) {
	rec := NewRecorder(4)
	t0 := time.Unix(1000, 0)
	parent := NewSpanContext()
	root := rec.StartTrace("server", parent, t0)
	if root.TraceID() != parent.TraceID {
		t.Fatalf("child trace id %s, want parent's %s", root.TraceID(), parent.TraceID)
	}
	root.End(t0.Add(time.Second))
	snap, ok := rec.Lookup(parent.TraceID)
	if !ok {
		t.Fatal("completed trace not retained")
	}
	if snap.Spans[0].Parent != parent.SpanID {
		t.Fatalf("root parent %s, want remote span %s", snap.Spans[0].Parent, parent.SpanID)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	rec := NewRecorder(4)
	t0 := time.Unix(1000, 0)
	root := rec.StartTrace("job", SpanContext{}, t0)
	child := root.StartChild("queue", t0)
	child.End(t0.Add(2 * time.Second))
	iter := root.Record("iter", t0.Add(2*time.Second), t0.Add(3*time.Second))
	iter.SetAttr("outer", 1)
	iter.SetAttr("objective", -12.5)
	iter.SetAttr("objective", -11.0) // last write wins
	root.End(t0.Add(4 * time.Second))

	snap, ok := rec.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not retained after root End")
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(snap.Spans))
	}
	rootSnap, queueSnap, iterSnap := snap.Spans[0], snap.Spans[1], snap.Spans[2]
	if !rootSnap.Parent.IsZero() {
		t.Fatal("root span has a parent")
	}
	if queueSnap.Parent != rootSnap.ID || iterSnap.Parent != rootSnap.ID {
		t.Fatal("children not parented to the root")
	}
	if queueSnap.Duration() != 2*time.Second || iterSnap.Duration() != time.Second {
		t.Fatalf("durations %v/%v, want 2s/1s", queueSnap.Duration(), iterSnap.Duration())
	}
	if rootSnap.Duration() != 4*time.Second {
		t.Fatalf("root duration %v, want 4s", rootSnap.Duration())
	}
	if len(iterSnap.Attrs) != 2 {
		t.Fatalf("iter attrs %v, want 2 (last write wins)", iterSnap.Attrs)
	}
	if iterSnap.Attrs[1].Key != "objective" || iterSnap.Attrs[1].Value != -11.0 {
		t.Fatalf("objective attr %v, want -11.0", iterSnap.Attrs[1])
	}
	ids := map[SpanID]bool{}
	for _, sp := range snap.Spans {
		if sp.ID.IsZero() || ids[sp.ID] {
			t.Fatalf("span id %s zero or duplicated", sp.ID)
		}
		ids[sp.ID] = true
	}
}

func TestLiveSnapshot(t *testing.T) {
	rec := NewRecorder(4)
	t0 := time.Unix(1000, 0)
	root := rec.StartTrace("job", SpanContext{}, t0)
	root.Record("queue", t0, t0.Add(time.Second))
	snap := root.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("live snapshot has %d spans, want 2", len(snap.Spans))
	}
	if !snap.Spans[0].End.IsZero() {
		t.Fatal("open root snapshotted with a non-zero end")
	}
	// The in-flight trace is not in the ring yet.
	if _, ok := rec.Lookup(root.TraceID()); ok {
		t.Fatal("in-flight trace retained before root End")
	}
}

func TestRingBoundAndOrder(t *testing.T) {
	rec := NewRecorder(3)
	t0 := time.Unix(1000, 0)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		root := rec.StartTrace(fmt.Sprintf("t%d", i), SpanContext{}, t0)
		root.End(t0.Add(time.Duration(i) * time.Second))
		ids = append(ids, root.TraceID())
	}
	recent := rec.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(recent))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []TraceID{ids[4], ids[3], ids[2]} {
		if recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].TraceID, want)
		}
	}
	if _, ok := rec.Lookup(ids[0]); ok {
		t.Fatal("evicted trace still resolvable")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", 1)
	sp.End(time.Now())
	if c := sp.StartChild("x", time.Now()); c != nil {
		t.Fatal("nil StartChild returned a span")
	}
	if c := sp.Record("x", time.Now(), time.Now()); c != nil {
		t.Fatal("nil Record returned a span")
	}
	if sp.Context().Valid() {
		t.Fatal("nil Context is valid")
	}
	if snap := sp.Snapshot(); len(snap.Spans) != 0 {
		t.Fatal("nil Snapshot has spans")
	}
}

// TestConcurrentSpanRecording exercises the fit-goroutine-vs-handler shape:
// one goroutine records child spans while others snapshot the live trace and
// the recorder completes sibling traces. Run with -race.
func TestConcurrentSpanRecording(t *testing.T) {
	rec := NewRecorder(8)
	t0 := time.Unix(1000, 0)
	root := rec.StartTrace("job", SpanContext{}, t0)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			sp := root.Record("iter", t0, t0.Add(time.Second))
			sp.SetAttr("outer", i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = root.Snapshot()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r := rec.StartTrace("req", SpanContext{}, t0)
			r.End(t0.Add(time.Millisecond))
			_ = rec.Recent()
		}
	}()
	wg.Wait()
	root.End(t0.Add(time.Minute))
	snap, ok := rec.Lookup(root.TraceID())
	if !ok {
		t.Fatal("job trace not retained")
	}
	if len(snap.Spans) != 101 {
		t.Fatalf("%d spans, want 101", len(snap.Spans))
	}
}

func TestDoubleEndCompletesOnce(t *testing.T) {
	rec := NewRecorder(4)
	t0 := time.Unix(1000, 0)
	root := rec.StartTrace("r", SpanContext{}, t0)
	root.End(t0.Add(time.Second))
	root.End(t0.Add(time.Hour)) // idempotent: neither re-keeps nor re-times
	if got := len(rec.Recent()); got != 1 {
		t.Fatalf("ring holds %d traces after double End, want 1", got)
	}
	snap, _ := rec.Lookup(root.TraceID())
	if snap.Spans[0].Duration() != time.Second {
		t.Fatalf("second End overwrote the root end: %v", snap.Spans[0].Duration())
	}
}

// TestSpanAndAttrCaps pins the flight-recorder bounds: a trace drops spans
// past maxSpansPerTrace (StartChild returns a safe nil) and a span drops
// new attribute keys past maxAttrsPerSpan while still updating existing
// ones.
func TestSpanAndAttrCaps(t *testing.T) {
	r := NewRecorder(1)
	at := time.Unix(0, 0)
	root := r.StartTrace("root", SpanContext{}, at)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		sp := root.Record("child", at, at)
		if i < maxSpansPerTrace-1 && sp == nil { // root occupies one slot
			t.Fatalf("span %d dropped below the cap", i)
		}
		if i >= maxSpansPerTrace && sp != nil {
			t.Fatalf("span %d admitted past the cap", i)
		}
		sp.SetAttr("i", i) // nil-safe past the cap
	}
	if n := len(root.Snapshot().Spans); n != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want the cap %d", n, maxSpansPerTrace)
	}

	for i := 0; i < maxAttrsPerSpan+10; i++ {
		root.SetAttr(fmt.Sprintf("k%04d", i), i)
	}
	root.SetAttr("k0000", "updated") // existing keys update past the cap
	attrs := root.Snapshot().Spans[0].Attrs
	if len(attrs) != maxAttrsPerSpan {
		t.Fatalf("span holds %d attrs, want the cap %d", len(attrs), maxAttrsPerSpan)
	}
	if attrs[0].Key != "k0000" || attrs[0].Value != "updated" {
		t.Fatalf("existing attr not updated past the cap: %+v", attrs[0])
	}
}
