// Package trace is genclusd's dependency-free distributed-tracing core: a
// span recorder with a bounded in-memory ring of recent completed traces,
// plus W3C traceparent generation and parsing for propagating trace context
// across process boundaries (SDK → primary, replica → primary, supervisor →
// refit job).
//
// The design keeps tracing away from the numeric hot paths by construction:
// spans are only ever opened at request, job, sync-pass and outer-iteration
// granularity — never inside EM inner loops — so the EM-iteration and
// assign-batch 0 allocs/op contracts hold with tracing active. All Span
// methods are nil-receiver safe, so call sites on optional paths (recovered
// jobs, tracer-less Syncers) need no guards.
//
// Timestamps are always supplied by the caller: the package never reads the
// wall clock, which keeps span timing on the server's injectable test clock
// and makes recorded traces deterministic under a fake clock.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one trace,
// across every process the trace touches.
type TraceID [16]byte

// IsZero reports the invalid all-zero trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID decodes a 32-hex trace id (the String form); the boolean
// reports success, and an all-zero id is rejected like Parse does.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanID is the 8-byte W3C span id, unique within its trace.
type SpanID [8]byte

// IsZero reports the invalid all-zero span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagatable slice of a span's identity: enough to
// parent a remote child span onto the same trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context identifies a real span (both ids
// non-zero, per the W3C traceparent spec).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context in the W3C traceparent header format:
// version 00, sampled flag set ("" for an invalid context, so callers can
// set headers unconditionally).
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], sc.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sc.SpanID[:])
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}

// Parse decodes a W3C traceparent header value. It accepts exactly the
// version-00 layout ("00-<32 hex>-<16 hex>-<2 hex>"), requires non-zero
// trace and span ids, and ignores the flags byte. The boolean reports
// success; a malformed header simply yields an invalid (ignorable) context —
// inbound headers are untrusted and must never fail a request.
func Parse(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !isHex(s[53]) || !isHex(s[54]) || !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// NewSpanContext mints a fresh root context (random trace and span ids) for
// callers that originate a trace without a Recorder — the client SDK uses it
// so MultiEndpoint failover attempts share one traceparent.
func NewSpanContext() SpanContext {
	var sc SpanContext
	fillRandom(sc.TraceID[:])
	fillRandom(sc.SpanID[:])
	return sc
}

// idFallback feeds id generation when crypto/rand is unavailable (it is not
// in practice; this keeps ids non-zero rather than panicking).
var idFallback atomic.Uint64

func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil || allZero(b) {
		n := idFallback.Add(1)
		binary.BigEndian.PutUint64(b[len(b)-8:], n|1<<63)
	}
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Attr is one key/value span attribute. Value is a small scalar (string,
// int, int64, float64, bool) set via the Span setters.
type Attr struct {
	Key   string
	Value any
}

// Per-trace and per-span caps: tracing is an always-on flight recorder, so
// a pathological caller (or a bug in a hook) must never grow one trace
// without bound. Excess spans and attributes are silently dropped — spans
// by StartChild/Record returning nil (every Span method is nil-safe), new
// attribute keys by SetAttr becoming a no-op (existing keys still update).
const (
	maxSpansPerTrace = 4096
	maxAttrsPerSpan  = 64
)

// Span is one timed operation inside a trace. Spans are created via
// Recorder.StartTrace (roots), Span.StartChild (open children) and
// Span.Record (already-completed children). All methods are safe on a nil
// receiver — optional tracing paths need no guards — and safe for concurrent
// use (the fit goroutine records iteration spans while handlers snapshot the
// same trace).
type Span struct {
	tr     *trace
	name   string
	id     SpanID
	parent SpanID // zero for a root with no remote parent
	root   bool   // ending the root completes the trace
	start  time.Time
	end    time.Time // zero while the span is open
	attrs  []Attr
}

// trace is the shared state of one trace's spans. The root span's End
// completes the trace into the recorder's ring.
type trace struct {
	mu       sync.Mutex
	id       TraceID
	rec      *Recorder
	spans    []*Span
	spanBase SpanID // XOR base for counter-derived span ids
	nextSpan uint64
	done     bool
}

// newSpanID derives the next span id from the per-trace random base and a
// counter: unique within the trace, no per-span entropy read. Caller holds
// tr.mu.
func (tr *trace) newSpanID() SpanID {
	tr.nextSpan++
	var id SpanID
	binary.BigEndian.PutUint64(id[:], binary.BigEndian.Uint64(tr.spanBase[:])^tr.nextSpan)
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// Context returns the span's propagatable identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tr.id, SpanID: s.id}
}

// TraceID returns the trace the span belongs to (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// StartChild opens a child span at the given start time. The child must be
// ended (End) before the root ends for its duration to be final; a child
// still open when the trace completes is snapshotted with a zero end. Once
// the trace holds maxSpansPerTrace spans, StartChild returns nil (safe to
// use) and the child is dropped.
func (s *Span) StartChild(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= maxSpansPerTrace {
		return nil
	}
	child := &Span{tr: tr, name: name, id: tr.newSpanID(), parent: s.id, start: start}
	tr.spans = append(tr.spans, child)
	return child
}

// Record appends an already-completed child span — the one-call form for
// retrospective intervals (queue wait, a finished outer iteration). The
// returned span accepts attributes.
func (s *Span) Record(name string, start, end time.Time) *Span {
	child := s.StartChild(name, start)
	if child != nil {
		child.tr.mu.Lock()
		child.end = end
		child.tr.mu.Unlock()
	}
	return child
}

// SetAttr attaches a key/value attribute (last write wins per key). A span
// already holding maxAttrsPerSpan attributes drops new keys (existing keys
// still update).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	if len(s.attrs) >= maxAttrsPerSpan {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span at the given time. Ending the root span completes the
// whole trace into the recorder's ring (idempotent: only the first End of
// the root completes it).
func (s *Span) End(end time.Time) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if s.end.IsZero() {
		s.end = end
	}
	complete := s.root && !tr.done
	if complete {
		tr.done = true
	}
	var snap Snapshot
	if complete {
		snap = tr.snapshotLocked()
	}
	tr.mu.Unlock()
	if complete && tr.rec != nil {
		tr.rec.keep(snap)
	}
}

// SpanSnapshot is one span's immutable copy inside a Snapshot. A zero End
// means the span was still open when the snapshot was taken.
type SpanSnapshot struct {
	Name   string
	ID     SpanID
	Parent SpanID // the root's Parent is the remote span id, or zero
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Duration is End−Start, or 0 while the span is open.
func (s SpanSnapshot) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Snapshot is a consistent copy of one trace: the root span first, children
// in creation order.
type Snapshot struct {
	TraceID TraceID
	Spans   []SpanSnapshot
}

// Snapshot copies the span's whole trace — servable while the trace is still
// in flight (a running job's timeline). Returns a zero Snapshot on nil.
func (s *Span) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.snapshotLocked()
}

func (tr *trace) snapshotLocked() Snapshot {
	out := Snapshot{TraceID: tr.id, Spans: make([]SpanSnapshot, len(tr.spans))}
	for i, sp := range tr.spans {
		out.Spans[i] = SpanSnapshot{
			Name:   sp.name,
			ID:     sp.id,
			Parent: sp.parent,
			Start:  sp.start,
			End:    sp.end,
			Attrs:  append([]Attr(nil), sp.attrs...),
		}
	}
	return out
}

// Recorder mints traces and retains a bounded ring of the most recent
// completed ones. Safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	ring []Snapshot // ring[next] is the oldest slot once full
	next int
	size int
	cap  int
}

// NewRecorder builds a Recorder retaining up to capacity completed traces
// (minimum 1; callers disable retention by policy, not capacity 0).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]Snapshot, capacity), cap: capacity}
}

// StartTrace opens a new trace and returns its root span. A valid parent
// context adopts the caller's trace id and records the remote span as the
// root's parent — the cross-process join; an invalid one mints a fresh
// trace id. Callable on a nil Recorder: the spans work normally (ids,
// children, snapshots) but the completed trace is not retained — callers
// with an optional recorder need no guards.
func (r *Recorder) StartTrace(name string, parent SpanContext, start time.Time) *Span {
	tr := &trace{rec: r}
	if parent.Valid() {
		tr.id = parent.TraceID
	} else {
		fillRandom(tr.id[:])
	}
	fillRandom(tr.spanBase[:])
	root := &Span{tr: tr, name: name, id: tr.newSpanID(), parent: parent.SpanID, root: true, start: start}
	tr.spans = append(tr.spans, root)
	return root
}

// keep pushes a completed trace into the ring, evicting the oldest.
func (r *Recorder) keep(snap Snapshot) {
	r.mu.Lock()
	r.ring[r.next] = snap
	r.next = (r.next + 1) % r.cap
	if r.size < r.cap {
		r.size++
	}
	r.mu.Unlock()
}

// Recent returns the retained completed traces, newest first.
func (r *Recorder) Recent() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, r.size)
	for i := 1; i <= r.size; i++ {
		out = append(out, r.ring[(r.next-i+r.cap)%r.cap])
	}
	return out
}

// Lookup finds a retained completed trace by id (newest occurrence wins).
func (r *Recorder) Lookup(id TraceID) (Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.size; i++ {
		if snap := r.ring[(r.next-i+r.cap)%r.cap]; snap.TraceID == id {
			return snap, true
		}
	}
	return Snapshot{}, false
}
