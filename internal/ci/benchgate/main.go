package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed BENCH_fit.json to compare against (required)")
		currentPath  = flag.String("current", "BENCH_fit.json", "freshly regenerated BENCH_fit.json")
		key          = flag.String("key", "em-iteration/midsize", "benchmark entry to gate")
		maxNsRegress = flag.Float64("max-ns-regress", 0.25, "maximum allowed fractional ns/op regression")
		maxAllocs    = flag.Int64("max-allocs", -1, "absolute allocs/op ceiling on the current run (-1 disables; 0 pins zero-alloc)")
	)
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	baseline, err := loadEntries(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := loadEntries(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	violations := gate(baseline, current, *key, *maxNsRegress, *maxAllocs)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: PASS: %s\n", summarize(baseline, current, *key))
}
