// Command benchgate is the CI bench-regression gate: it compares a freshly
// regenerated BENCH_fit.json against the committed baseline and fails
// (exit 1) when the gated benchmark regressed — more than the allowed
// ns/op slowdown, or any allocation-count increase at all (the EM hot
// path's steady state is pinned at 0 allocs/op; a single new allocation
// per iteration is a real regression, never noise).
//
// CI runs it via `go run ./internal/ci/benchgate` right after the bench
// smoke step, with the pre-bench copy of BENCH_fit.json as the baseline:
//
//	cp BENCH_fit.json /tmp/bench-baseline.json
//	go test -run=xxx -bench=BenchmarkEMIteration -benchtime=200x .
//	go run ./internal/ci/benchgate -baseline /tmp/bench-baseline.json \
//	    -current BENCH_fit.json -key em-iteration/midsize \
//	    -max-ns-regress 0.25 -max-allocs 0
//
// The ns/op threshold is deliberately generous (25%) because CI machines
// vary; the alloc gate is exact because allocation counts do not.
// -max-allocs adds an *absolute* allocs/op ceiling on top of the relative
// no-increase rule: CI passes -max-allocs 0 for the zero-alloc hot paths,
// so the pin survives even a regressed committed baseline.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// entry is the subset of a BENCH_fit.json measurement the gate reads.
type entry struct {
	NsPerOp     int64  `json:"ns_per_op"`
	Iterations  int    `json:"benchmark_iterations"`
	AllocsPerOp *int64 `json:"allocs_per_op"`
}

// loadEntries parses a BENCH_fit.json file.
func loadEntries(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]entry)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return out, nil
}

// gate compares one benchmark key between baseline and current and returns
// the violations (empty = pass). Rules: the key must exist on both sides
// (a silently vanished benchmark must not pass the gate), current ns/op may
// exceed baseline by at most maxNsRegress (fractional, e.g. 0.25 = +25%),
// and allocs/op — when the baseline records them — may not increase at all.
// maxAllocs, when non-negative, is additionally an absolute allocs/op
// ceiling on the current run: unlike the relative rule it cannot be eroded
// by committing a regressed baseline, which is how the 0 allocs/op pins on
// the EM iteration and the assign pass stay pinned.
func gate(baseline, current map[string]entry, key string, maxNsRegress float64, maxAllocs int64) []string {
	var violations []string
	base, okB := baseline[key]
	cur, okC := current[key]
	if !okB {
		return append(violations, fmt.Sprintf("%s: missing from baseline — regenerate and commit BENCH_fit.json", key))
	}
	if !okC {
		return append(violations, fmt.Sprintf("%s: missing from current run — did the benchmark get renamed or filtered out?", key))
	}
	if base.NsPerOp > 0 {
		limit := float64(base.NsPerOp) * (1 + maxNsRegress)
		if float64(cur.NsPerOp) > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op regressed %.1f%%: %d → %d (limit +%.0f%%)",
				key, 100*(float64(cur.NsPerOp)/float64(base.NsPerOp)-1),
				base.NsPerOp, cur.NsPerOp, 100*maxNsRegress))
		}
	}
	if base.AllocsPerOp != nil {
		if cur.AllocsPerOp == nil {
			violations = append(violations, fmt.Sprintf(
				"%s: baseline records %d allocs/op but the current run records none", key, *base.AllocsPerOp))
		} else if *cur.AllocsPerOp > *base.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op increased: %d → %d (any increase fails)",
				key, *base.AllocsPerOp, *cur.AllocsPerOp))
		}
	}
	if maxAllocs >= 0 {
		if cur.AllocsPerOp == nil {
			violations = append(violations, fmt.Sprintf(
				"%s: -max-allocs %d set but the current run records no allocs/op", key, maxAllocs))
		} else if *cur.AllocsPerOp > maxAllocs {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %d exceeds the absolute ceiling %d",
				key, *cur.AllocsPerOp, maxAllocs))
		}
	}
	return violations
}

// summarize renders the pass-side comparison for the CI log.
func summarize(baseline, current map[string]entry, key string) string {
	base, cur := baseline[key], current[key]
	allocs := "n/a"
	if cur.AllocsPerOp != nil {
		allocs = fmt.Sprintf("%d", *cur.AllocsPerOp)
	}
	ratio := 0.0
	if base.NsPerOp > 0 {
		ratio = float64(cur.NsPerOp) / float64(base.NsPerOp)
	}
	return fmt.Sprintf("%s: %d ns/op vs baseline %d (×%.2f), allocs/op %s",
		key, cur.NsPerOp, base.NsPerOp, ratio, allocs)
}
