package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func i64p(v int64) *int64 { return &v }

func TestGateRules(t *testing.T) {
	base := map[string]entry{
		"em-iteration/midsize": {NsPerOp: 1000, AllocsPerOp: i64p(0)},
		"weather/cold":         {NsPerOp: 500},
	}
	cases := []struct {
		name    string
		current map[string]entry
		want    string // substring of the first violation, "" = pass
	}{
		{"identical", map[string]entry{"em-iteration/midsize": {NsPerOp: 1000, AllocsPerOp: i64p(0)}}, ""},
		{"within-threshold", map[string]entry{"em-iteration/midsize": {NsPerOp: 1249, AllocsPerOp: i64p(0)}}, ""},
		{"faster", map[string]entry{"em-iteration/midsize": {NsPerOp: 600, AllocsPerOp: i64p(0)}}, ""},
		{"ns-regression", map[string]entry{"em-iteration/midsize": {NsPerOp: 1300, AllocsPerOp: i64p(0)}}, "ns/op regressed"},
		{"alloc-increase", map[string]entry{"em-iteration/midsize": {NsPerOp: 900, AllocsPerOp: i64p(1)}}, "allocs/op increased"},
		{"allocs-vanished", map[string]entry{"em-iteration/midsize": {NsPerOp: 900}}, "records none"},
		{"missing-current", map[string]entry{"other": {NsPerOp: 1}}, "missing from current"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := gate(base, tc.current, "em-iteration/midsize", 0.25, -1)
			if tc.want == "" {
				if len(got) != 0 {
					t.Fatalf("want pass, got %v", got)
				}
				return
			}
			if len(got) == 0 || !strings.Contains(got[0], tc.want) {
				t.Fatalf("want violation containing %q, got %v", tc.want, got)
			}
		})
	}

	// A key absent from the baseline fails too (the gate must not silently
	// pass a benchmark nobody committed a baseline for).
	if got := gate(map[string]entry{}, base, "em-iteration/midsize", 0.25, -1); len(got) == 0 || !strings.Contains(got[0], "missing from baseline") {
		t.Fatalf("missing baseline: %v", got)
	}

	// Both regressions at once report both.
	both := map[string]entry{"em-iteration/midsize": {NsPerOp: 5000, AllocsPerOp: i64p(3)}}
	if got := gate(base, both, "em-iteration/midsize", 0.25, -1); len(got) != 2 {
		t.Fatalf("want 2 violations, got %v", got)
	}
}

// TestGateAbsoluteAllocCeiling covers -max-allocs: an absolute ceiling that
// holds even when the committed baseline itself has regressed, which is
// what pins the zero-alloc hot paths for good.
func TestGateAbsoluteAllocCeiling(t *testing.T) {
	// Baseline already regressed to 3 allocs/op: the relative rule passes
	// a matching current run, the absolute ceiling still fails it.
	regressed := map[string]entry{"em-iteration/midsize": {NsPerOp: 1000, AllocsPerOp: i64p(3)}}
	if got := gate(regressed, regressed, "em-iteration/midsize", 0.25, -1); len(got) != 0 {
		t.Fatalf("relative-only should pass a self-consistent baseline: %v", got)
	}
	got := gate(regressed, regressed, "em-iteration/midsize", 0.25, 0)
	if len(got) != 1 || !strings.Contains(got[0], "exceeds the absolute ceiling") {
		t.Fatalf("want absolute-ceiling violation, got %v", got)
	}

	clean := map[string]entry{"em-iteration/midsize": {NsPerOp: 1000, AllocsPerOp: i64p(0)}}
	if got := gate(clean, clean, "em-iteration/midsize", 0.25, 0); len(got) != 0 {
		t.Fatalf("0 allocs/op under -max-allocs 0 should pass: %v", got)
	}

	// A current run with no allocs/op recorded cannot prove it meets the
	// ceiling, so it fails when one is set.
	noAllocs := map[string]entry{"em-iteration/midsize": {NsPerOp: 1000}}
	got = gate(noAllocs, noAllocs, "em-iteration/midsize", 0.25, 0)
	if len(got) != 1 || !strings.Contains(got[0], "records no allocs/op") {
		t.Fatalf("want missing-allocs violation, got %v", got)
	}
}

// TestLoadEntriesAgainstCommittedBaseline parses the real committed
// BENCH_fit.json, so a format drift between the bench harness and the gate
// fails here instead of silently in CI.
func TestLoadEntriesAgainstCommittedBaseline(t *testing.T) {
	entries, err := loadEntries(filepath.Join("..", "..", "..", "BENCH_fit.json"))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := entries["em-iteration/midsize"]
	if !ok {
		t.Fatal("committed baseline lacks the gated key em-iteration/midsize")
	}
	if e.NsPerOp <= 0 {
		t.Fatalf("committed baseline ns/op not positive: %+v", e)
	}
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("committed baseline should pin 0 allocs/op: %+v", e)
	}
	// The committed file gates against itself (sanity: CI passes on an
	// unchanged tree, modulo machine noise the threshold absorbs).
	if got := gate(entries, entries, "em-iteration/midsize", 0.25, 0); len(got) != 0 {
		t.Fatalf("baseline does not pass against itself: %v", got)
	}
}

func TestLoadEntriesErrors(t *testing.T) {
	if _, err := loadEntries(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadEntries(bad); err == nil {
		t.Fatal("unparsable file must error")
	}
}
