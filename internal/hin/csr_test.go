package hin

import (
	"sort"
	"sync"
	"testing"
)

// checkCSRInvariants verifies the structural soundness of a network's CSR
// link views against its canonical edge list:
//
//   - every relation has an out view and a transpose with |V|+1
//     non-decreasing row offsets covering exactly that relation's links;
//   - walking the out views object-major, relation-major reproduces
//     Edges() exactly — same order, same duplicates, same weights — which
//     is the determinism contract the EM loop relies on;
//   - the transpose holds the same multiset of links per relation;
//   - the merged in-link view is ordered by (From, Rel) within each target
//     and agrees with InDegree.
//
// The fuzzer calls it on every decodable input.
func checkCSRInvariants(t testing.TB, net *Network) {
	t.Helper()
	nObj := net.NumObjects()
	nRel := net.NumRelations()
	outs := net.RelationCSRs()
	ins := net.RelationCSRTransposes()
	if len(outs) != nRel || len(ins) != nRel {
		t.Fatalf("CSR views: %d out, %d transpose for %d relations", len(outs), len(ins), nRel)
	}

	checkShape := func(m *CSR, name string) {
		if m.NumRows() != nObj {
			t.Fatalf("%s has %d rows, want %d", name, m.NumRows(), nObj)
		}
		if m.Start[0] != 0 || m.Start[nObj] != m.NNZ() {
			t.Fatalf("%s offsets don't cover entries: Start[0]=%d Start[n]=%d nnz=%d", name, m.Start[0], m.Start[nObj], m.NNZ())
		}
		if len(m.Weight) != m.NNZ() {
			t.Fatalf("%s has %d weights for %d entries", name, len(m.Weight), m.NNZ())
		}
		for v := 0; v < nObj; v++ {
			if m.Start[v] > m.Start[v+1] {
				t.Fatalf("%s offsets decrease at row %d", name, v)
			}
			cols, _ := m.Row(v)
			if len(cols) != m.RowNNZ(v) {
				t.Fatalf("%s Row/RowNNZ disagree at %d", name, v)
			}
			for _, c := range cols {
				if c < 0 || c >= nObj {
					t.Fatalf("%s row %d has column %d outside [0,%d)", name, v, c, nObj)
				}
			}
		}
	}

	totalOut, totalIn := 0, 0
	for r := 0; r < nRel; r++ {
		checkShape(&outs[r], "out["+net.RelationName(r)+"]")
		checkShape(&ins[r], "in["+net.RelationName(r)+"]")
		totalOut += outs[r].NNZ()
		totalIn += ins[r].NNZ()
	}
	if totalOut != net.NumEdges() || totalIn != net.NumEdges() {
		t.Fatalf("CSR views store %d out / %d in links for %d edges", totalOut, totalIn, net.NumEdges())
	}

	// Walking out views object-major, relation-major must reproduce the
	// canonical edge list exactly (order, duplicates, weights).
	i := 0
	edges := net.Edges()
	for v := 0; v < nObj; v++ {
		for r := 0; r < nRel; r++ {
			cols, wts := outs[r].Row(v)
			for j := range cols {
				if i >= len(edges) {
					t.Fatalf("out views yield more links than edges")
				}
				e := edges[i]
				if e.From != v || e.Rel != r || e.To != cols[j] || e.Weight != wts[j] {
					t.Fatalf("out-view walk diverges from edge %d: got (%d -[%d]-> %d, w=%v), want (%d -[%d]-> %d, w=%v)",
						i, v, r, cols[j], wts[j], e.From, e.Rel, e.To, e.Weight)
				}
				i++
			}
		}
	}
	if i != len(edges) {
		t.Fatalf("out views yield %d links for %d edges", i, len(edges))
	}

	// The transpose holds the same (From, To, Weight) multiset per relation.
	type link struct {
		from, to int
		w        float64
	}
	sortLinks := func(ls []link) {
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].from != ls[j].from {
				return ls[i].from < ls[j].from
			}
			if ls[i].to != ls[j].to {
				return ls[i].to < ls[j].to
			}
			return ls[i].w < ls[j].w
		})
	}
	for r := 0; r < nRel; r++ {
		var fromOut, fromIn []link
		for v := 0; v < nObj; v++ {
			cols, wts := outs[r].Row(v)
			for j := range cols {
				fromOut = append(fromOut, link{v, cols[j], wts[j]})
			}
			icols, iwts := ins[r].Row(v)
			for j := range icols {
				fromIn = append(fromIn, link{icols[j], v, iwts[j]})
			}
		}
		sortLinks(fromOut)
		sortLinks(fromIn)
		if len(fromOut) != len(fromIn) {
			t.Fatalf("relation %d: %d out links, %d transposed", r, len(fromOut), len(fromIn))
		}
		for j := range fromOut {
			if fromOut[j] != fromIn[j] {
				t.Fatalf("relation %d: transpose link %d = %+v, out link %+v", r, j, fromIn[j], fromOut[j])
			}
		}
	}

	// Merged in-link view: (From, Rel)-ordered per target, length-consistent.
	for v := 0; v < nObj; v++ {
		from, rels, wts := net.InLinks(v)
		if len(from) != net.InDegree(v) || len(rels) != len(from) || len(wts) != len(from) {
			t.Fatalf("merged in-links of %d: lengths %d/%d/%d for InDegree %d", v, len(from), len(rels), len(wts), net.InDegree(v))
		}
		for j := 1; j < len(from); j++ {
			if from[j] < from[j-1] || (from[j] == from[j-1] && rels[j] < rels[j-1]) {
				t.Fatalf("merged in-links of %d not in (From, Rel) order at %d", v, j)
			}
		}
	}
}

func TestCSRToyNetwork(t *testing.T) {
	checkCSRInvariants(t, buildToy(t))
}

// TestCSREmptyRelation: a relation interned without any links still gets a
// (all-empty-rows) CSR pair, and relations emptied by FilterEdges keep
// their dense ids with zero entries.
func TestCSREmptyRelation(t *testing.T) {
	b := NewBuilder()
	b.AddObject("a", "t")
	b.AddObject("c", "t")
	b.Relation("lonely")
	b.AddLink("a", "c", "used", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, net)
	lonely, ok := net.RelationID("lonely")
	if !ok {
		t.Fatal("interned relation lost")
	}
	if nnz := net.RelationCSR(lonely).NNZ(); nnz != 0 {
		t.Fatalf("empty relation stores %d links", nnz)
	}
	if nnz := net.RelationCSRTranspose(lonely).NNZ(); nnz != 0 {
		t.Fatalf("empty relation transpose stores %d links", nnz)
	}

	filtered, err := FilterEdges(net, func(Edge) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, filtered)
	if filtered.NumRelations() != net.NumRelations() {
		t.Fatal("FilterEdges dropped relation ids")
	}
}

// TestCSRSelfLinks: a self-link appears in the object's own row in both the
// out view and the transpose.
func TestCSRSelfLinks(t *testing.T) {
	b := NewBuilder()
	b.AddObject("a", "t")
	b.AddObject("c", "t")
	b.AddLink("a", "a", "self", 2)
	b.AddLink("a", "c", "self", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, net)
	va, _ := net.IndexOf("a")
	r, _ := net.RelationID("self")
	cols, wts := net.RelationCSR(r).Row(va)
	if len(cols) != 2 || cols[0] != va || wts[0] != 2 {
		t.Fatalf("self-link missing from out row: cols=%v wts=%v", cols, wts)
	}
	icols, iwts := net.RelationCSRTranspose(r).Row(va)
	if len(icols) != 1 || icols[0] != va || iwts[0] != 2 {
		t.Fatalf("self-link missing from transpose row: cols=%v wts=%v", icols, iwts)
	}
}

// TestCSRDuplicateLinks: duplicate (src, dst, relation) links stay separate
// adjacent entries whose weights accumulate when walked — coalescing them
// would change the EM summation tree and break bitwise determinism against
// the edge-list order.
func TestCSRDuplicateLinks(t *testing.T) {
	b := NewBuilder()
	b.AddObject("a", "t")
	b.AddObject("c", "t")
	b.AddLink("a", "c", "r", 1)
	b.AddLink("a", "c", "r", 2.5)
	b.AddLink("a", "c", "other", 4)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, net)
	va, _ := net.IndexOf("a")
	vc, _ := net.IndexOf("c")
	r, _ := net.RelationID("r")
	cols, wts := net.RelationCSR(r).Row(va)
	if len(cols) != 2 || cols[0] != vc || cols[1] != vc {
		t.Fatalf("duplicate links not kept as separate entries: cols=%v", cols)
	}
	if total := wts[0] + wts[1]; total != 3.5 {
		t.Fatalf("duplicate weights accumulate to %v, want 3.5", total)
	}
	icols, iwts := net.RelationCSRTranspose(r).Row(vc)
	if len(icols) != 2 || iwts[0]+iwts[1] != 3.5 {
		t.Fatalf("transpose lost a duplicate: cols=%v wts=%v", icols, iwts)
	}
}

// TestCSRTransposeRoundTrip: transposing the transpose reproduces the out
// view on a network with interleaved relations and asymmetric links.
func TestCSRTransposeRoundTrip(t *testing.T) {
	net := buildToy(t)
	nObj := net.NumObjects()
	for r := 0; r < net.NumRelations(); r++ {
		out := net.RelationCSR(r)
		in := net.RelationCSRTranspose(r)
		// Rebuild an out view from the transpose and compare entry sets
		// row by row (within-row order may legitimately differ only for
		// duplicate columns, which buildToy does not have).
		rebuilt := make(map[int][][2]float64) // from → list of (to, w)
		for v := 0; v < nObj; v++ {
			cols, wts := in.Row(v)
			for j, u := range cols {
				rebuilt[u] = append(rebuilt[u], [2]float64{float64(v), wts[j]})
			}
		}
		for v := 0; v < nObj; v++ {
			cols, wts := out.Row(v)
			got := rebuilt[v]
			if len(got) != len(cols) {
				t.Fatalf("relation %d row %d: transpose-of-transpose has %d entries, want %d", r, v, len(got), len(cols))
			}
			sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
			for j := range cols {
				if int(got[j][0]) != cols[j] || got[j][1] != wts[j] {
					t.Fatalf("relation %d row %d entry %d: got (%v, %v), want (%d, %v)", r, v, j, got[j][0], got[j][1], cols[j], wts[j])
				}
			}
		}
	}
}

// TestPrepareCSRConcurrent: many goroutines racing PrepareCSR and the
// accessors must observe one consistent build (run with -race).
func TestPrepareCSRConcurrent(t *testing.T) {
	net := buildToy(t)
	views := make([][]CSR, 8)
	var wg sync.WaitGroup
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net.PrepareCSR()
			views[i] = net.RelationCSRs()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(views); i++ {
		if &views[i][0] != &views[0][0] {
			t.Fatal("concurrent PrepareCSR produced distinct builds")
		}
	}
	checkCSRInvariants(t, net)
}
