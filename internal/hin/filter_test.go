package hin

import "testing"

func TestFilterEdgesKeepAll(t *testing.T) {
	net := buildToy(t)
	filtered, err := FilterEdges(net, func(Edge) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	assertNetworksEqual(t, net, filtered)
}

func TestFilterEdgesDropRelation(t *testing.T) {
	net := buildToy(t)
	writeRel, _ := net.RelationID("write")
	filtered, err := FilterEdges(net, func(e Edge) bool { return e.Rel != writeRel })
	if err != nil {
		t.Fatal(err)
	}
	// Objects and index space preserved.
	if filtered.NumObjects() != net.NumObjects() {
		t.Fatal("object count changed")
	}
	for v := 0; v < net.NumObjects(); v++ {
		if filtered.Object(v).ID != net.Object(v).ID {
			t.Fatal("object index space changed")
		}
	}
	// Relation index space preserved even though 'write' lost all edges.
	if filtered.NumRelations() != net.NumRelations() {
		t.Fatalf("relation count changed: %d vs %d", filtered.NumRelations(), net.NumRelations())
	}
	fr, ok := filtered.RelationID("write")
	if !ok || fr != writeRel {
		t.Fatal("relation id for write changed")
	}
	// No write edges remain; everything else intact.
	for _, e := range filtered.Edges() {
		if e.Rel == writeRel {
			t.Fatal("write edge survived the filter")
		}
	}
	wantRemaining := 0
	for _, e := range net.Edges() {
		if e.Rel != writeRel {
			wantRemaining++
		}
	}
	if filtered.NumEdges() != wantRemaining {
		t.Fatalf("edges = %d, want %d", filtered.NumEdges(), wantRemaining)
	}
	// Observations preserved.
	text, _ := filtered.AttrID("text")
	p1, _ := filtered.IndexOf("p1")
	if len(filtered.TermCounts(text, p1)) == 0 {
		t.Fatal("observations lost by filter")
	}
}

func TestFilterEdgesDropAll(t *testing.T) {
	net := buildToy(t)
	filtered, err := FilterEdges(net, func(Edge) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if filtered.NumEdges() != 0 {
		t.Fatal("edges survived drop-all filter")
	}
	if filtered.NumObjects() != net.NumObjects() {
		t.Fatal("objects changed")
	}
}

func TestFilterEdgesNil(t *testing.T) {
	if _, err := FilterEdges(nil, func(Edge) bool { return true }); err == nil {
		t.Error("nil network should error")
	}
}
