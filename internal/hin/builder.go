package hin

import (
	"fmt"
	"math"
	"sort"
)

// Builder incrementally assembles a Network. It is not safe for concurrent
// use. Build validates the accumulated definition and freezes it into an
// immutable Network.
type Builder struct {
	objects []Object
	idIndex map[string]int

	relations []string
	relIndex  map[string]int

	edges []Edge

	attrs     []AttrSpec
	attrIndex map[string]int
	catObs    []map[int]map[int]float64 // attr → obj → term → count
	numObs    []map[int][]float64       // attr → obj → observations

	err error // first definition error, reported by Build
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		idIndex:   make(map[string]int),
		relIndex:  make(map[string]int),
		attrIndex: make(map[string]int),
	}
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// AddObject registers an object with a unique ID and a type name, returning
// its dense index. Re-adding an existing ID with the same type is a no-op;
// with a different type it is an error (reported by Build).
func (b *Builder) AddObject(id, objType string) int {
	if id == "" || objType == "" {
		b.fail("hin: object needs non-empty id and type (id=%q type=%q)", id, objType)
		return -1
	}
	if v, ok := b.idIndex[id]; ok {
		if b.objects[v].Type != objType {
			b.fail("hin: object %q re-added with type %q, was %q", id, objType, b.objects[v].Type)
		}
		return v
	}
	v := len(b.objects)
	b.objects = append(b.objects, Object{ID: id, Type: objType})
	b.idIndex[id] = v
	return v
}

// Relation interns a relation name and returns its dense index.
func (b *Builder) Relation(name string) int {
	if name == "" {
		b.fail("hin: empty relation name")
		return -1
	}
	if r, ok := b.relIndex[name]; ok {
		return r
	}
	r := len(b.relations)
	b.relations = append(b.relations, name)
	b.relIndex[name] = r
	return r
}

// AddLink adds a directed weighted edge between existing objects. Weights
// must be positive and finite (the paper's W).
func (b *Builder) AddLink(fromID, toID, relation string, weight float64) {
	from, okF := b.idIndex[fromID]
	to, okT := b.idIndex[toID]
	if !okF || !okT {
		b.fail("hin: link %s -[%s]-> %s references unknown object", fromID, relation, toID)
		return
	}
	b.AddLinkByIndex(from, to, relation, weight)
}

// AddLinkByIndex is AddLink for callers that already hold dense indices
// (generators adding millions of edges avoid the map lookups).
func (b *Builder) AddLinkByIndex(from, to int, relation string, weight float64) {
	if from < 0 || from >= len(b.objects) || to < 0 || to >= len(b.objects) {
		b.fail("hin: link endpoint index out of range (%d, %d)", from, to)
		return
	}
	if !(weight > 0) || math.IsInf(weight, 0) || math.IsNaN(weight) {
		b.fail("hin: link %s -> %s has invalid weight %v (must be positive finite)", b.objects[from].ID, b.objects[to].ID, weight)
		return
	}
	r := b.Relation(relation)
	if r < 0 {
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Rel: r, Weight: weight})
}

// DeclareAttribute registers an attribute. Categorical attributes need a
// positive vocabulary size. Redeclaring with identical spec is a no-op.
func (b *Builder) DeclareAttribute(spec AttrSpec) int {
	if spec.Name == "" {
		b.fail("hin: attribute needs a name")
		return -1
	}
	if spec.Kind == Categorical && spec.VocabSize <= 0 {
		b.fail("hin: categorical attribute %q needs VocabSize > 0", spec.Name)
		return -1
	}
	if spec.Kind != Categorical && spec.Kind != Numeric {
		b.fail("hin: attribute %q has unknown kind %d", spec.Name, spec.Kind)
		return -1
	}
	if a, ok := b.attrIndex[spec.Name]; ok {
		if b.attrs[a] != spec {
			b.fail("hin: attribute %q redeclared with different spec", spec.Name)
		}
		return a
	}
	a := len(b.attrs)
	b.attrs = append(b.attrs, spec)
	b.attrIndex[spec.Name] = a
	b.catObs = append(b.catObs, make(map[int]map[int]float64))
	b.numObs = append(b.numObs, make(map[int][]float64))
	return a
}

// AddTermCount accumulates `count` occurrences of `term` for the categorical
// attribute on the object (c_{v,l} in Eq. 3).
func (b *Builder) AddTermCount(objID, attr string, term int, count float64) {
	v, ok := b.idIndex[objID]
	if !ok {
		b.fail("hin: observation on unknown object %q", objID)
		return
	}
	b.AddTermCountByIndex(v, attr, term, count)
}

// AddTermCountByIndex is AddTermCount with a dense object index.
func (b *Builder) AddTermCountByIndex(v int, attr string, term int, count float64) {
	a, ok := b.attrIndex[attr]
	if !ok {
		b.fail("hin: observation on undeclared attribute %q", attr)
		return
	}
	if b.attrs[a].Kind != Categorical {
		b.fail("hin: term observation on %s attribute %q", b.attrs[a].Kind, attr)
		return
	}
	if v < 0 || v >= len(b.objects) {
		b.fail("hin: observation object index %d out of range", v)
		return
	}
	if term < 0 || term >= b.attrs[a].VocabSize {
		b.fail("hin: term %d outside vocabulary of %q (size %d)", term, attr, b.attrs[a].VocabSize)
		return
	}
	if !(count > 0) || math.IsInf(count, 0) || math.IsNaN(count) {
		b.fail("hin: term count must be positive finite, got %v", count)
		return
	}
	m := b.catObs[a][v]
	if m == nil {
		m = make(map[int]float64)
		b.catObs[a][v] = m
	}
	m[term] += count
}

// AddNumeric appends a numeric observation of the attribute to the object
// (one element of v[X] in Eq. 4).
func (b *Builder) AddNumeric(objID, attr string, value float64) {
	v, ok := b.idIndex[objID]
	if !ok {
		b.fail("hin: observation on unknown object %q", objID)
		return
	}
	b.AddNumericByIndex(v, attr, value)
}

// AddNumericByIndex is AddNumeric with a dense object index.
func (b *Builder) AddNumericByIndex(v int, attr string, value float64) {
	a, ok := b.attrIndex[attr]
	if !ok {
		b.fail("hin: observation on undeclared attribute %q", attr)
		return
	}
	if b.attrs[a].Kind != Numeric {
		b.fail("hin: numeric observation on %s attribute %q", b.attrs[a].Kind, attr)
		return
	}
	if v < 0 || v >= len(b.objects) {
		b.fail("hin: observation object index %d out of range", v)
		return
	}
	if math.IsInf(value, 0) || math.IsNaN(value) {
		b.fail("hin: numeric observation must be finite, got %v", value)
		return
	}
	b.numObs[a][v] = append(b.numObs[a][v], value)
}

// Build validates the accumulated definition and returns the immutable
// Network. The Builder may be reused afterwards, but networks built earlier
// are unaffected.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.objects) == 0 {
		return nil, fmt.Errorf("hin: network has no objects")
	}
	n := &Network{
		objects:   append([]Object(nil), b.objects...),
		idIndex:   make(map[string]int, len(b.idIndex)),
		typeIndex: make(map[string][]int),
		relations: append([]string(nil), b.relations...),
		relIndex:  make(map[string]int, len(b.relIndex)),
		edges:     append([]Edge(nil), b.edges...),
		attrs:     append([]AttrSpec(nil), b.attrs...),
		attrIndex: make(map[string]int, len(b.attrIndex)),
	}
	for id, v := range b.idIndex {
		n.idIndex[id] = v
	}
	for name, r := range b.relIndex {
		n.relIndex[name] = r
	}
	for name, a := range b.attrIndex {
		n.attrIndex[name] = a
	}
	for v, o := range n.objects {
		n.typeIndex[o.Type] = append(n.typeIndex[o.Type], v)
	}

	// CSR out-adjacency: sort edges by (From, Rel, To) for deterministic
	// iteration order, then compute offsets.
	sort.Slice(n.edges, func(i, j int) bool {
		a, bb := n.edges[i], n.edges[j]
		if a.From != bb.From {
			return a.From < bb.From
		}
		if a.Rel != bb.Rel {
			return a.Rel < bb.Rel
		}
		return a.To < bb.To
	})
	nObj := len(n.objects)
	n.outStart = make([]int, nObj+1)
	for _, e := range n.edges {
		n.outStart[e.From+1]++
	}
	for v := 0; v < nObj; v++ {
		n.outStart[v+1] += n.outStart[v]
	}

	// In-link offsets by To. The in-adjacency itself (per-relation CSR
	// transposes and the merged in-link view) is built lazily by
	// Network.PrepareCSR on first use.
	n.inStart = make([]int, nObj+1)
	for _, e := range n.edges {
		n.inStart[e.To+1]++
	}
	for v := 0; v < nObj; v++ {
		n.inStart[v+1] += n.inStart[v]
	}

	// Freeze observations into sorted sparse slices.
	n.catObs = make([][][]TermCount, len(n.attrs))
	n.numObs = make([][][]float64, len(n.attrs))
	for a, spec := range n.attrs {
		switch spec.Kind {
		case Categorical:
			n.catObs[a] = make([][]TermCount, nObj)
			for v, m := range b.catObs[a] {
				tcs := make([]TermCount, 0, len(m))
				for term, c := range m {
					tcs = append(tcs, TermCount{Term: term, Count: c})
				}
				sort.Slice(tcs, func(i, j int) bool { return tcs[i].Term < tcs[j].Term })
				n.catObs[a][v] = tcs
			}
		case Numeric:
			n.numObs[a] = make([][]float64, nObj)
			for v, xs := range b.numObs[a] {
				n.numObs[a][v] = append([]float64(nil), xs...)
			}
		}
	}
	return n, nil
}
