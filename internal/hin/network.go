// Package hin models heterogeneous information networks as defined in §2.1
// of the paper: a directed graph G = (V, E, W) whose objects carry explicit
// types (τ: V → A), whose links carry explicit relation types (φ: E → R) and
// positive weights, and whose objects are associated with (possibly
// incomplete) attribute observations — categorical bags of terms (e.g. paper
// titles) or lists of numeric readings (e.g. sensor temperatures).
//
// Networks are constructed through a Builder, validated once, and immutable
// afterwards; adjacency is stored CSR-style so the clustering algorithms can
// stream over out-links and in-links without per-query allocation.
package hin

import (
	"fmt"
	"sort"
	"sync"
)

// Kind distinguishes the two attribute families the paper models (§3.2):
// categorical text attributes with term counts, and numeric attributes with
// Gaussian mixture components.
type Kind int

const (
	// Categorical attributes hold sparse term counts over a fixed vocabulary.
	Categorical Kind = iota
	// Numeric attributes hold lists of real-valued observations.
	Numeric
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AttrSpec declares an attribute: its name, kind, and (for categorical
// attributes) vocabulary size.
type AttrSpec struct {
	Name      string // attribute name, unique per network
	Kind      Kind   // Categorical or Numeric
	VocabSize int    // required > 0 for Categorical, ignored for Numeric
}

// Object is a typed node.
type Object struct {
	ID   string // externally meaningful identifier, unique in the network
	Type string // object type name (τ)
}

// Edge is a typed, weighted, directed link. From/To are dense object
// indices; Rel is a dense relation index.
type Edge struct {
	From   int     // dense index of the source object
	To     int     // dense index of the target object
	Rel    int     // dense relation id (φ)
	Weight float64 // positive finite link weight (W)
}

// TermCount is one entry of a sparse categorical observation.
type TermCount struct {
	Term  int     // term index within the attribute's vocabulary
	Count float64 // accumulated positive count (c_{v,l})
}

// Network is an immutable heterogeneous information network.
type Network struct {
	objects   []Object
	idIndex   map[string]int
	typeIndex map[string][]int

	relations []string
	relIndex  map[string]int

	edges    []Edge // sorted by (From, Rel, To)
	outStart []int  // CSR offsets into edges by From
	inStart  []int  // in-link counts per object, as CSR offsets by To

	// csr holds the lazily-built per-relation CSR link views the EM hot
	// path walks (see csr.go). Built at most once per network; csrOnce
	// makes concurrent fits of a shared network safe. The per-relation
	// transposes (csrT) build separately on first demand — no production
	// path consumes them yet.
	csrOnce  sync.Once
	csr      *csrViews
	csrTOnce sync.Once
	csrT     []CSR

	attrs     []AttrSpec
	attrIndex map[string]int
	// catObs[a][v] is the sparse term-count list of attribute a on object v
	// (nil when the object has no observation — the "incomplete" case).
	catObs [][][]TermCount
	// numObs[a][v] is the numeric observation list (nil when absent).
	numObs [][][]float64
}

// NumObjects returns |V|.
func (n *Network) NumObjects() int { return len(n.objects) }

// NumEdges returns |E|.
func (n *Network) NumEdges() int { return len(n.edges) }

// NumRelations returns |R|.
func (n *Network) NumRelations() int { return len(n.relations) }

// NumAttrs returns the number of declared attributes.
func (n *Network) NumAttrs() int { return len(n.attrs) }

// Object returns the object at dense index v.
func (n *Network) Object(v int) Object { return n.objects[v] }

// IndexOf returns the dense index of the object with the given ID.
func (n *Network) IndexOf(id string) (int, bool) {
	v, ok := n.idIndex[id]
	return v, ok
}

// TypeOf returns the object type of index v.
func (n *Network) TypeOf(v int) string { return n.objects[v].Type }

// Types returns all object type names, sorted.
func (n *Network) Types() []string {
	out := make([]string, 0, len(n.typeIndex))
	for t := range n.typeIndex {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ObjectsOfType returns the dense indices of objects with the given type.
// The returned slice is shared; callers must not mutate it.
func (n *Network) ObjectsOfType(t string) []int { return n.typeIndex[t] }

// RelationName returns the name of relation index r.
func (n *Network) RelationName(r int) string { return n.relations[r] }

// RelationID returns the dense index of the named relation.
func (n *Network) RelationID(name string) (int, bool) {
	r, ok := n.relIndex[name]
	return r, ok
}

// Relations returns all relation names indexed by dense relation id. The
// returned slice is shared; callers must not mutate it.
func (n *Network) Relations() []string { return n.relations }

// Edges returns all edges sorted by (From, Rel, To). Shared; do not mutate.
func (n *Network) Edges() []Edge { return n.edges }

// OutEdges returns the out-links of object v (shared slice; do not mutate).
func (n *Network) OutEdges(v int) []Edge { return n.edges[n.outStart[v]:n.outStart[v+1]] }

// OutDegree returns the number of out-links of v.
func (n *Network) OutDegree(v int) int { return n.outStart[v+1] - n.outStart[v] }

// InDegree returns the number of in-links of v.
func (n *Network) InDegree(v int) int { return n.inStart[v+1] - n.inStart[v] }

// Attr returns the spec of attribute index a.
func (n *Network) Attr(a int) AttrSpec { return n.attrs[a] }

// AttrID returns the dense index of the named attribute.
func (n *Network) AttrID(name string) (int, bool) {
	a, ok := n.attrIndex[name]
	return a, ok
}

// Attrs returns all attribute specs (shared; do not mutate).
func (n *Network) Attrs() []AttrSpec { return n.attrs }

// TermCounts returns the categorical observation of attribute a on object v,
// or nil when v has none (incomplete attribute). Panics if a is numeric.
func (n *Network) TermCounts(a, v int) []TermCount {
	if n.attrs[a].Kind != Categorical {
		panic(fmt.Sprintf("hin: TermCounts on %s attribute %q", n.attrs[a].Kind, n.attrs[a].Name))
	}
	return n.catObs[a][v]
}

// NumericObs returns the numeric observations of attribute a on object v, or
// nil when v has none. Panics if a is categorical.
func (n *Network) NumericObs(a, v int) []float64 {
	if n.attrs[a].Kind != Numeric {
		panic(fmt.Sprintf("hin: NumericObs on %s attribute %q", n.attrs[a].Kind, n.attrs[a].Name))
	}
	return n.numObs[a][v]
}

// AttrTermCounts returns the per-object sparse term-count lists of
// categorical attribute a, indexed by dense object id (nil entries mark
// objects without an observation). Shared; callers must not mutate. Hot
// loops use it to walk observations without per-object accessor calls.
// Panics if a is numeric.
func (n *Network) AttrTermCounts(a int) [][]TermCount {
	if n.attrs[a].Kind != Categorical {
		panic(fmt.Sprintf("hin: AttrTermCounts on %s attribute %q", n.attrs[a].Kind, n.attrs[a].Name))
	}
	return n.catObs[a]
}

// AttrNumericObs returns the per-object numeric observation lists of
// numeric attribute a, indexed by dense object id (nil entries mark objects
// without an observation). Shared; callers must not mutate. Panics if a is
// categorical.
func (n *Network) AttrNumericObs(a int) [][]float64 {
	if n.attrs[a].Kind != Numeric {
		panic(fmt.Sprintf("hin: AttrNumericObs on %s attribute %q", n.attrs[a].Kind, n.attrs[a].Name))
	}
	return n.numObs[a]
}

// HasObservation reports whether object v carries any observation of
// attribute a — the indicator 1{v∈V_X} in the paper's update rules.
func (n *Network) HasObservation(a, v int) bool {
	switch n.attrs[a].Kind {
	case Categorical:
		return len(n.catObs[a][v]) > 0
	case Numeric:
		return len(n.numObs[a][v]) > 0
	default:
		return false
	}
}

// ObservationCount returns the total number of attribute observations of
// attribute a on object v (term-count mass for categorical attributes).
func (n *Network) ObservationCount(a, v int) float64 {
	switch n.attrs[a].Kind {
	case Categorical:
		var s float64
		for _, tc := range n.catObs[a][v] {
			s += tc.Count
		}
		return s
	case Numeric:
		return float64(len(n.numObs[a][v]))
	default:
		return 0
	}
}

// Stats summarizes a network for logs and documentation.
type Stats struct {
	Objects      int            // |V|
	Edges        int            // |E|
	Relations    int            // |R|
	Attributes   int            // declared attributes
	TypeCounts   map[string]int // object type → #objects
	RelCounts    map[string]int // relation name → #links
	ObservedObjs map[string]int // attribute name → #objects with ≥1 observation
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	s := Stats{
		Objects:      n.NumObjects(),
		Edges:        n.NumEdges(),
		Relations:    n.NumRelations(),
		Attributes:   n.NumAttrs(),
		TypeCounts:   make(map[string]int),
		RelCounts:    make(map[string]int),
		ObservedObjs: make(map[string]int),
	}
	for t, objs := range n.typeIndex {
		s.TypeCounts[t] = len(objs)
	}
	for _, e := range n.edges {
		s.RelCounts[n.relations[e.Rel]]++
	}
	for a, spec := range n.attrs {
		count := 0
		for v := 0; v < n.NumObjects(); v++ {
			if n.HasObservation(a, v) {
				count++
			}
		}
		s.ObservedObjs[spec.Name] = count
	}
	return s
}

// String renders the stats in a compact single line.
func (s Stats) String() string {
	return fmt.Sprintf("objects=%d edges=%d relations=%d attrs=%d types=%v", s.Objects, s.Edges, s.Relations, s.Attributes, s.TypeCounts)
}
