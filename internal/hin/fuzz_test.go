package hin

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzLimits keeps hostile inputs from exploding memory during fuzzing; the
// same mechanism shields the genclusd upload endpoint in production.
var fuzzLimits = Limits{
	MaxObjects:      2000,
	MaxLinks:        10000,
	MaxAttributes:   32,
	MaxVocab:        4096,
	MaxObservations: 20000,
}

// FuzzDecodeNetwork hammers the untrusted-input decoder: any byte slice
// must either fail with an error or produce a network that survives a full
// marshal → decode round trip unchanged in shape. Panics and round-trip
// drift are the bugs being hunted.
func FuzzDecodeNetwork(f *testing.F) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(fixtures) == 0 {
		f.Fatal("no testdata fixtures to seed the corpus")
	}
	for _, path := range fixtures {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"objects":[{"id":"a","type":"t"}]}`))
	f.Add([]byte(`{"attributes":[{"name":"n","kind":"numeric"}],"objects":[{"id":"a","type":"t","numeric":{"n":[1e308,-1e308]}}]}`))
	// Self-links and duplicate (src, dst, relation) links: the CSR builder
	// must keep duplicates as separate adjacent entries (never coalesce).
	f.Add([]byte(`{"objects":[{"id":"a","type":"t"},{"id":"b","type":"t"}],` +
		`"links":[{"from":"a","to":"a","rel":"self","w":1},` +
		`{"from":"a","to":"b","rel":"r","w":1},{"from":"a","to":"b","rel":"r","w":2},` +
		`{"from":"b","to":"a","rel":"r","w":0.5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := FromJSONLimited(data, fuzzLimits)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := net.MarshalJSON()
		if err != nil {
			t.Fatalf("network decoded from %q fails to marshal: %v", data, err)
		}
		again, err := FromJSONLimited(enc, fuzzLimits)
		if err != nil {
			t.Fatalf("round trip rejects own output: %v\ninput: %q\nencoded: %q", err, data, enc)
		}
		if again.NumObjects() != net.NumObjects() ||
			again.NumEdges() != net.NumEdges() ||
			again.NumRelations() != net.NumRelations() ||
			again.NumAttrs() != net.NumAttrs() {
			t.Fatalf("round trip changed shape: objects %d→%d edges %d→%d relations %d→%d attrs %d→%d",
				net.NumObjects(), again.NumObjects(), net.NumEdges(), again.NumEdges(),
				net.NumRelations(), again.NumRelations(), net.NumAttrs(), again.NumAttrs())
		}
		// Any decodable network must also yield structurally sound CSR
		// link views — the storage every fit walks.
		checkCSRInvariants(t, net)
	})
}

// TestFromJSONLimited pins the limit checks outside the fuzzer so plain
// `go test` exercises them too.
func TestFromJSONLimited(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "small.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSONLimited(data, Limits{}); err != nil {
		t.Fatalf("no limits: %v", err)
	}
	mixed, err := os.ReadFile(filepath.Join("testdata", "mixed.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		lim  Limits
	}{
		{"objects", data, Limits{MaxObjects: 1}},
		{"links", data, Limits{MaxLinks: 1}},
		{"attributes", mixed, Limits{MaxAttributes: 1}}, // mixed.json declares 2
		{"observations", data, Limits{MaxObservations: 1}},
	}
	for _, tc := range cases {
		_, err := FromJSONLimited(tc.data, tc.lim)
		var lim *LimitError
		if !errors.As(err, &lim) {
			t.Errorf("%s limit not enforced (err=%v)", tc.name, err)
		} else if lim.Dimension != tc.name {
			t.Errorf("%s limit reported dimension %q", tc.name, lim.Dimension)
		}
	}
	if _, err := FromJSONLimited([]byte(`{"attributes":[{"name":"t","kind":"categorical","vocab":1000000000}],"objects":[{"id":"a","type":"t"}]}`),
		Limits{MaxVocab: 4096}); err == nil {
		t.Error("gigantic vocabulary accepted")
	}
}
