package hin

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// networkJSON is the on-disk representation: self-describing, stable across
// versions of the in-memory layout, and editable by hand for small networks.
type networkJSON struct {
	Objects    []objectJSON `json:"objects"`
	Links      []linkJSON   `json:"links"`
	Attributes []attrJSON   `json:"attributes"`
}

type objectJSON struct {
	ID      string               `json:"id"`
	Type    string               `json:"type"`
	Terms   map[string][]tcJSON  `json:"terms,omitempty"`   // attr name → term counts
	Numeric map[string][]float64 `json:"numeric,omitempty"` // attr name → observations
}

type tcJSON struct {
	Term  int     `json:"t"`
	Count float64 `json:"c"`
}

type linkJSON struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Relation string  `json:"rel"`
	Weight   float64 `json:"w"`
}

type attrJSON struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "categorical" | "numeric"
	VocabSize int    `json:"vocab,omitempty"`
}

// MarshalJSON serializes the network.
func (n *Network) MarshalJSON() ([]byte, error) {
	doc := networkJSON{}
	for _, spec := range n.attrs {
		doc.Attributes = append(doc.Attributes, attrJSON{
			Name:      spec.Name,
			Kind:      spec.Kind.String(),
			VocabSize: spec.VocabSize,
		})
	}
	for v, o := range n.objects {
		oj := objectJSON{ID: o.ID, Type: o.Type}
		for a, spec := range n.attrs {
			switch spec.Kind {
			case Categorical:
				if tcs := n.catObs[a][v]; len(tcs) > 0 {
					if oj.Terms == nil {
						oj.Terms = make(map[string][]tcJSON)
					}
					list := make([]tcJSON, len(tcs))
					for i, tc := range tcs {
						list[i] = tcJSON{Term: tc.Term, Count: tc.Count}
					}
					oj.Terms[spec.Name] = list
				}
			case Numeric:
				if xs := n.numObs[a][v]; len(xs) > 0 {
					if oj.Numeric == nil {
						oj.Numeric = make(map[string][]float64)
					}
					oj.Numeric[spec.Name] = xs
				}
			}
		}
		doc.Objects = append(doc.Objects, oj)
	}
	for _, e := range n.edges {
		doc.Links = append(doc.Links, linkJSON{
			From:     n.objects[e.From].ID,
			To:       n.objects[e.To].ID,
			Relation: n.relations[e.Rel],
			Weight:   e.Weight,
		})
	}
	return json.Marshal(doc)
}

// Limits bounds what a decoded network may allocate, protecting callers
// that decode untrusted input (the genclusd upload endpoint). A zero field
// means "no limit" on that dimension. MaxVocab matters most: a declared
// vocabulary size is an allocation amplifier — a few bytes of JSON make
// every fit allocate K×VocabSize floats per categorical attribute.
type Limits struct {
	MaxObjects      int // objects in the network
	MaxLinks        int // links in the network
	MaxAttributes   int // declared attributes
	MaxVocab        int // vocabulary size of any categorical attribute
	MaxObservations int // total term-count entries plus numeric observations
}

// LimitError reports input rejected because it exceeds a Limits bound —
// distinguishable (errors.As) from malformed-document errors so servers can
// answer 413 instead of 400.
type LimitError struct {
	Dimension string // "objects", "links", "attributes", "vocabulary", "observations"
	Got, Max  int    // observed count and the bound it exceeded
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("hin: %d %s exceeds limit %d", e.Got, e.Dimension, e.Max)
}

func (l Limits) check(doc *networkJSON) error {
	if l.MaxObjects > 0 && len(doc.Objects) > l.MaxObjects {
		return &LimitError{Dimension: "objects", Got: len(doc.Objects), Max: l.MaxObjects}
	}
	if l.MaxLinks > 0 && len(doc.Links) > l.MaxLinks {
		return &LimitError{Dimension: "links", Got: len(doc.Links), Max: l.MaxLinks}
	}
	if l.MaxAttributes > 0 && len(doc.Attributes) > l.MaxAttributes {
		return &LimitError{Dimension: "attributes", Got: len(doc.Attributes), Max: l.MaxAttributes}
	}
	if l.MaxVocab > 0 {
		for _, aj := range doc.Attributes {
			if aj.VocabSize > l.MaxVocab {
				return &LimitError{Dimension: "vocabulary", Got: aj.VocabSize, Max: l.MaxVocab}
			}
		}
	}
	if l.MaxObservations > 0 {
		var obs int
		for _, oj := range doc.Objects {
			for _, tcs := range oj.Terms {
				obs += len(tcs)
			}
			for _, xs := range oj.Numeric {
				obs += len(xs)
			}
			if obs > l.MaxObservations {
				return &LimitError{Dimension: "observations", Got: obs, Max: l.MaxObservations}
			}
		}
	}
	return nil
}

// FromJSONLimited parses a network serialized by MarshalJSON, re-running
// full Builder validation, with resource limits enforced before any network
// structure is built — so a small hostile document cannot force a large
// allocation downstream. Limits fields that are zero are unenforced;
// callers decoding input they did not produce should pass real bounds
// (genclus.DefaultDecodeLimits is the library-wide default).
//
// There is deliberately no unbounded FromJSON: the bounded decoder is the
// only path from bytes to a Network, and "unbounded" is spelled Limits{}.
func FromJSONLimited(data []byte, lim Limits) (*Network, error) {
	var doc networkJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("hin: parse network JSON: %w", err)
	}
	if err := lim.check(&doc); err != nil {
		return nil, err
	}
	b := NewBuilder()
	for _, aj := range doc.Attributes {
		var kind Kind
		switch aj.Kind {
		case "categorical":
			kind = Categorical
		case "numeric":
			kind = Numeric
		default:
			return nil, fmt.Errorf("hin: unknown attribute kind %q", aj.Kind)
		}
		b.DeclareAttribute(AttrSpec{Name: aj.Name, Kind: kind, VocabSize: aj.VocabSize})
	}
	for _, oj := range doc.Objects {
		b.AddObject(oj.ID, oj.Type)
	}
	for _, oj := range doc.Objects {
		for attr, tcs := range oj.Terms {
			for _, tc := range tcs {
				b.AddTermCount(oj.ID, attr, tc.Term, tc.Count)
			}
		}
		for attr, xs := range oj.Numeric {
			for _, x := range xs {
				b.AddNumeric(oj.ID, attr, x)
			}
		}
	}
	for _, lj := range doc.Links {
		b.AddLink(lj.From, lj.To, lj.Relation, lj.Weight)
	}
	return b.Build()
}

// WriteTo streams the JSON encoding to w.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	data, err := n.MarshalJSON()
	if err != nil {
		return 0, err
	}
	m, err := w.Write(data)
	return int64(m), err
}

// SaveFile writes the network to a JSON file.
func (n *Network) SaveFile(path string) error {
	data, err := n.MarshalJSON()
	if err != nil {
		return fmt.Errorf("hin: encode network: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("hin: write %s: %w", path, err)
	}
	return nil
}

// LoadFileLimited reads a network from a JSON file with resource limits
// enforced before any network structure is built. As with FromJSONLimited,
// Limits{} means unbounded and there is no unbounded convenience wrapper.
func LoadFileLimited(path string, lim Limits) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hin: read %s: %w", path, err)
	}
	return FromJSONLimited(data, lim)
}
