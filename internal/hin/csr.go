package hin

// CSR is an immutable compressed-sparse-row adjacency matrix over the links
// of a single relation. Rows are dense object indices; row v's entries live
// in Col[Start[v]:Start[v+1]] and Weight[Start[v]:Start[v+1]]. In the
// out-link view a column is the link target (To); in the transpose it is the
// link source (From).
//
// Entries within a row are ordered by ascending column index, with duplicate
// (row, column) links kept as adjacent separate entries in their original
// build order — never coalesced — so walking a CSR row reproduces the exact
// floating-point summation order of walking the sorted edge list. That
// ordering is part of the determinism contract (see docs/ARCHITECTURE.md):
// a fit must be bitwise reproducible regardless of which adjacency view the
// EM loop consumes.
type CSR struct {
	// Start has NumRows+1 offsets into Col/Weight.
	Start []int
	// Col holds the column index of each stored link.
	Col []int
	// Weight holds the link weight of each stored link, aligned with Col.
	Weight []float64
}

// NumRows returns the number of rows (always the network's object count).
func (m *CSR) NumRows() int { return len(m.Start) - 1 }

// NNZ returns the number of stored links.
func (m *CSR) NNZ() int { return len(m.Col) }

// Row returns row v's column indices and weights as shared subslices;
// callers must not mutate them.
func (m *CSR) Row(v int) (cols []int, weights []float64) {
	lo, hi := m.Start[v], m.Start[v+1]
	return m.Col[lo:hi], m.Weight[lo:hi]
}

// RowNNZ returns the number of stored links in row v.
func (m *CSR) RowNNZ(v int) int { return m.Start[v+1] - m.Start[v] }

// csrViews is the lazily-built sparse link storage the EM hot path walks:
// one CSR per relation (rows = From) and a merged in-link view that keeps
// the global edge order. Built once per Network on first use and immutable
// afterwards. The per-relation transposes live behind their own lazy build
// (csrTOnce) because no production path consumes them yet — they exist for
// the future row-range sharding work and for tests, and eagerly scanning
// every edge again on upload would tax all networks for that.
type csrViews struct {
	out []CSR // per relation, rows = From, columns = To

	// Merged in-link view: entry j of object v (j in inStart[v]:inStart[v+1],
	// inStart owned by Network) stores the source object inFrom[j], relation
	// inRel[j] and weight inWeight[j] of one incoming link, in global edge
	// order — i.e. sorted by (From, Rel) within each target. Symmetric
	// propagation walks this view so its summation order matches the
	// pre-CSR edge-index iteration bit for bit.
	inFrom   []int
	inRel    []int
	inWeight []float64
}

// PrepareCSR builds the per-relation CSR link views if they do not exist
// yet. It is idempotent and safe for concurrent use; every CSR accessor
// calls it implicitly. Fit setup and the genclusd upload path invoke it
// eagerly so the build cost is paid once, off the EM iteration path.
func (n *Network) PrepareCSR() {
	n.csrOnce.Do(n.buildCSR)
}

func (n *Network) buildCSR() {
	nObj := len(n.objects)
	nRel := len(n.relations)
	v := &csrViews{
		out: make([]CSR, nRel),
	}

	// Per-relation link counts by row.
	for r := 0; r < nRel; r++ {
		v.out[r].Start = make([]int, nObj+1)
	}
	for _, e := range n.edges {
		v.out[e.Rel].Start[e.From+1]++
	}
	for r := 0; r < nRel; r++ {
		outS := v.out[r].Start
		for i := 0; i < nObj; i++ {
			outS[i+1] += outS[i]
		}
		v.out[r].Col = make([]int, outS[nObj])
		v.out[r].Weight = make([]float64, outS[nObj])
	}

	// Fill by scanning the edges in their canonical (From, Rel, To) order:
	// the out view inherits ascending To within each row, the merged
	// in-link view the global edge order, and duplicates keep their
	// original relative order. Next-free-slot cursors start as a copy of
	// each Start array.
	v.inFrom = make([]int, len(n.edges))
	v.inRel = make([]int, len(n.edges))
	v.inWeight = make([]float64, len(n.edges))
	mergedCur := append([]int(nil), n.inStart...)
	outNext := make([][]int, nRel)
	for r := 0; r < nRel; r++ {
		outNext[r] = append([]int(nil), v.out[r].Start...)
	}
	for _, e := range n.edges {
		o := &v.out[e.Rel]
		p := outNext[e.Rel][e.From]
		o.Col[p] = e.To
		o.Weight[p] = e.Weight
		outNext[e.Rel][e.From]++

		m := mergedCur[e.To]
		v.inFrom[m] = e.From
		v.inRel[m] = e.Rel
		v.inWeight[m] = e.Weight
		mergedCur[e.To]++
	}
	n.csr = v
}

// buildCSRT builds the per-relation in-link transposes on first demand —
// they have no production consumer yet (symmetric propagation walks the
// merged view; strength statistics walk the out views), so they are not
// part of the upload-time PrepareCSR cost.
func (n *Network) buildCSRT() {
	nObj := len(n.objects)
	nRel := len(n.relations)
	in := make([]CSR, nRel)
	for r := 0; r < nRel; r++ {
		in[r].Start = make([]int, nObj+1)
	}
	for _, e := range n.edges {
		in[e.Rel].Start[e.To+1]++
	}
	inNext := make([][]int, nRel)
	for r := 0; r < nRel; r++ {
		inS := in[r].Start
		for i := 0; i < nObj; i++ {
			inS[i+1] += inS[i]
		}
		in[r].Col = make([]int, inS[nObj])
		in[r].Weight = make([]float64, inS[nObj])
		inNext[r] = append([]int(nil), inS...)
	}
	// Scanning in canonical edge order gives each transpose row ascending
	// From, duplicates in their original relative order.
	for _, e := range n.edges {
		t := &in[e.Rel]
		q := inNext[e.Rel][e.To]
		t.Col[q] = e.From
		t.Weight[q] = e.Weight
		inNext[e.Rel][e.To]++
	}
	n.csrT = in
}

// RelationCSR returns the out-link CSR of relation r (rows = From, columns =
// To). The returned matrix is shared and immutable.
func (n *Network) RelationCSR(r int) *CSR {
	n.PrepareCSR()
	return &n.csr.out[r]
}

// RelationCSRTranspose returns the in-link CSR of relation r (rows = To,
// columns = From), building the transposes on first use. The returned
// matrix is shared and immutable.
func (n *Network) RelationCSRTranspose(r int) *CSR {
	n.csrTOnce.Do(n.buildCSRT)
	return &n.csrT[r]
}

// RelationCSRs returns every relation's out-link CSR indexed by dense
// relation id. The slice and matrices are shared; callers must not mutate
// them.
func (n *Network) RelationCSRs() []CSR {
	n.PrepareCSR()
	return n.csr.out
}

// RelationCSRTransposes returns every relation's in-link CSR indexed by
// dense relation id, building the transposes on first use. The slice and
// matrices are shared; callers must not mutate them.
func (n *Network) RelationCSRTransposes() []CSR {
	n.csrTOnce.Do(n.buildCSRT)
	return n.csrT
}

// InLinks returns the incoming links of object v as parallel subslices
// (source object, relation id, weight), ordered by (source, relation) — the
// global edge order. Shared; callers must not mutate.
func (n *Network) InLinks(v int) (from, rel []int, weight []float64) {
	n.PrepareCSR()
	lo, hi := n.inStart[v], n.inStart[v+1]
	return n.csr.inFrom[lo:hi], n.csr.inRel[lo:hi], n.csr.inWeight[lo:hi]
}

// InLinkArrays exposes the full merged in-link view for hot loops: start has
// NumObjects+1 offsets, and from/rel/weight describe each incoming link in
// global edge order. Shared; callers must not mutate.
func (n *Network) InLinkArrays() (start, from, rel []int, weight []float64) {
	n.PrepareCSR()
	return n.inStart, n.csr.inFrom, n.csr.inRel, n.csr.inWeight
}
