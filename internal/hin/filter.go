package hin

import "fmt"

// FilterEdges returns a new network containing the same objects, attributes
// and observations, but only the edges for which keep returns true. The
// object and relation index spaces are preserved (relations that lose all
// their edges remain declared), so memberships and strengths fitted on the
// filtered network remain index-compatible with the original — the
// held-out link-prediction evaluation depends on this.
func FilterEdges(n *Network, keep func(Edge) bool) (*Network, error) {
	if n == nil {
		return nil, fmt.Errorf("hin: FilterEdges on nil network")
	}
	b := NewBuilder()
	for _, spec := range n.attrs {
		b.DeclareAttribute(spec)
	}
	for v := 0; v < n.NumObjects(); v++ {
		obj := n.Object(v)
		b.AddObject(obj.ID, obj.Type)
	}
	// Intern every relation up front so dense relation ids survive even if
	// all edges of a relation are dropped.
	for _, name := range n.relations {
		b.Relation(name)
	}
	for _, e := range n.edges {
		if keep(e) {
			b.AddLinkByIndex(e.From, e.To, n.relations[e.Rel], e.Weight)
		}
	}
	for a, spec := range n.attrs {
		for v := 0; v < n.NumObjects(); v++ {
			switch spec.Kind {
			case Categorical:
				for _, tc := range n.catObs[a][v] {
					b.AddTermCountByIndex(v, spec.Name, tc.Term, tc.Count)
				}
			case Numeric:
				for _, x := range n.numObs[a][v] {
					b.AddNumericByIndex(v, spec.Name, x)
				}
			}
		}
	}
	return b.Build()
}
