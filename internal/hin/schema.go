package hin

import (
	"fmt"
	"sort"
	"strings"
)

// RelationSignature is the typed endpoint pattern of a relation: every edge
// of the relation goes from SrcType to DstType. This is the paper's §2.1
// formalism — "if a relation exists from type A to type B, denoted ARB" —
// made checkable.
type RelationSignature struct {
	Relation string // relation name
	SrcType  string // object type every source has
	DstType  string // object type every target has
}

// Schema is the typed structure of a network: object types and the
// signature of every relation.
type Schema struct {
	ObjectTypes []string            // all object type names, sorted
	Relations   []RelationSignature // one signature per relation, by dense id
}

// InferSchema derives the schema from a network's edges. It fails when a
// relation connects more than one (source type, target type) pair — a
// malformed heterogeneous network under the paper's model, where relation
// semantics are tied to the types they join. Relations with no edges are
// reported with empty types.
func InferSchema(n *Network) (*Schema, error) {
	if n == nil {
		return nil, fmt.Errorf("hin: InferSchema on nil network")
	}
	s := &Schema{ObjectTypes: n.Types()}
	sigs := make([]RelationSignature, n.NumRelations())
	seen := make([]bool, n.NumRelations())
	for _, e := range n.Edges() {
		src, dst := n.TypeOf(e.From), n.TypeOf(e.To)
		if !seen[e.Rel] {
			sigs[e.Rel] = RelationSignature{Relation: n.RelationName(e.Rel), SrcType: src, DstType: dst}
			seen[e.Rel] = true
			continue
		}
		if sigs[e.Rel].SrcType != src || sigs[e.Rel].DstType != dst {
			return nil, fmt.Errorf("hin: relation %q joins both (%s→%s) and (%s→%s)",
				n.RelationName(e.Rel), sigs[e.Rel].SrcType, sigs[e.Rel].DstType, src, dst)
		}
	}
	for r := range sigs {
		if !seen[r] {
			sigs[r] = RelationSignature{Relation: n.RelationName(r)}
		}
	}
	s.Relations = sigs
	return s, nil
}

// Validate checks a network against an expected schema: every relation's
// edges must match the declared signature. Relations present in the network
// but absent from the schema are rejected.
func (s *Schema) Validate(n *Network) error {
	if n == nil {
		return fmt.Errorf("hin: schema validation on nil network")
	}
	bySig := make(map[string]RelationSignature, len(s.Relations))
	for _, sig := range s.Relations {
		bySig[sig.Relation] = sig
	}
	for _, e := range n.Edges() {
		name := n.RelationName(e.Rel)
		sig, ok := bySig[name]
		if !ok {
			return fmt.Errorf("hin: relation %q not declared in schema", name)
		}
		src, dst := n.TypeOf(e.From), n.TypeOf(e.To)
		if sig.SrcType != src || sig.DstType != dst {
			return fmt.Errorf("hin: edge %s→%s violates %q signature %s→%s",
				src, dst, name, sig.SrcType, sig.DstType)
		}
	}
	return nil
}

// String renders the schema as sorted "rel: src → dst" lines.
func (s *Schema) String() string {
	lines := make([]string, 0, len(s.Relations)+1)
	lines = append(lines, "types: "+strings.Join(s.ObjectTypes, ", "))
	sigs := append([]RelationSignature(nil), s.Relations...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Relation < sigs[j].Relation })
	for _, sig := range sigs {
		if sig.SrcType == "" && sig.DstType == "" {
			lines = append(lines, fmt.Sprintf("%s: (no edges)", sig.Relation))
			continue
		}
		lines = append(lines, fmt.Sprintf("%s: %s -> %s", sig.Relation, sig.SrcType, sig.DstType))
	}
	return strings.Join(lines, "\n")
}
