package hin

// CloneInto replays an existing network's full definition — attributes,
// relations, objects, edges and observations — into a builder. It is the
// substrate for immutable view generations: a mutation never edits a live
// Network; instead the current view is cloned into a fresh Builder with the
// removed material filtered out by the keep callbacks, the new material is
// added on top, and Build produces the next generation. Because Build
// canonicalizes (edges sorted by (From, Rel, To), observations frozen into
// sorted sparse slices), the rebuilt network is bit-for-bit the network a
// from-scratch Builder with the same content would produce — which is what
// keeps warm-start refits of a mutated network deterministic.
//
// keepEdge decides which edges carry over (nil keeps all). keepObs decides
// which per-object attribute observations carry over, called once per
// (object, attribute) pair that has an observation (nil keeps all).
// Relations are pre-registered in the source network's dense order, so a
// clone that drops every edge of a relation still knows the relation.
func CloneInto(b *Builder, n *Network, keepEdge func(Edge) bool, keepObs func(objID, attr string) bool) {
	for _, spec := range n.attrs {
		b.DeclareAttribute(spec)
	}
	for _, name := range n.relations {
		b.Relation(name)
	}
	for _, o := range n.objects {
		b.AddObject(o.ID, o.Type)
	}
	for _, e := range n.edges {
		if keepEdge != nil && !keepEdge(e) {
			continue
		}
		b.AddLinkByIndex(e.From, e.To, n.relations[e.Rel], e.Weight)
	}
	for a, spec := range n.attrs {
		switch spec.Kind {
		case Categorical:
			for v, tcs := range n.catObs[a] {
				if len(tcs) == 0 {
					continue
				}
				if keepObs != nil && !keepObs(n.objects[v].ID, spec.Name) {
					continue
				}
				for _, tc := range tcs {
					b.AddTermCountByIndex(v, spec.Name, tc.Term, tc.Count)
				}
			}
		case Numeric:
			for v, xs := range n.numObs[a] {
				if len(xs) == 0 {
					continue
				}
				if keepObs != nil && !keepObs(n.objects[v].ID, spec.Name) {
					continue
				}
				for _, x := range xs {
					b.AddNumericByIndex(v, spec.Name, x)
				}
			}
		}
	}
}

// CheckNetwork verifies a built network against the limits — the post-apply
// half of the mutation trust boundary. Limits.check bounds what a decoded
// document may allocate before it is built; CheckNetwork bounds what a
// network may grow into through incremental mutations, with the same
// dimensions and the same *LimitError so servers keep answering 413.
func (l Limits) CheckNetwork(n *Network) error {
	if l.MaxObjects > 0 && n.NumObjects() > l.MaxObjects {
		return &LimitError{Dimension: "objects", Got: n.NumObjects(), Max: l.MaxObjects}
	}
	if l.MaxLinks > 0 && n.NumEdges() > l.MaxLinks {
		return &LimitError{Dimension: "links", Got: n.NumEdges(), Max: l.MaxLinks}
	}
	if l.MaxAttributes > 0 && n.NumAttrs() > l.MaxAttributes {
		return &LimitError{Dimension: "attributes", Got: n.NumAttrs(), Max: l.MaxAttributes}
	}
	if l.MaxVocab > 0 {
		for _, spec := range n.attrs {
			if spec.VocabSize > l.MaxVocab {
				return &LimitError{Dimension: "vocabulary", Got: spec.VocabSize, Max: l.MaxVocab}
			}
		}
	}
	if l.MaxObservations > 0 {
		var obs int
		for a, spec := range n.attrs {
			switch spec.Kind {
			case Categorical:
				for _, tcs := range n.catObs[a] {
					obs += len(tcs)
				}
			case Numeric:
				for _, xs := range n.numObs[a] {
					obs += len(xs)
				}
			}
		}
		if obs > l.MaxObservations {
			return &LimitError{Dimension: "observations", Got: obs, Max: l.MaxObservations}
		}
	}
	return nil
}
