package hin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildToy constructs the Fig. 2-style bibliographic fragment used across
// the tests: two authors, one venue, two papers with text.
func buildToy(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	b.DeclareAttribute(AttrSpec{Name: "text", Kind: Categorical, VocabSize: 10})
	b.DeclareAttribute(AttrSpec{Name: "score", Kind: Numeric})
	b.AddObject("a1", "author")
	b.AddObject("a2", "author")
	b.AddObject("v1", "venue")
	b.AddObject("p1", "paper")
	b.AddObject("p2", "paper")
	b.AddLink("a1", "p1", "write", 1)
	b.AddLink("a2", "p1", "write", 1)
	b.AddLink("a2", "p2", "write", 1)
	b.AddLink("p1", "a1", "written_by", 1)
	b.AddLink("p1", "a2", "written_by", 1)
	b.AddLink("p2", "a2", "written_by", 1)
	b.AddLink("p1", "v1", "published_by", 1)
	b.AddLink("p2", "v1", "published_by", 1)
	b.AddLink("v1", "p1", "publish", 1)
	b.AddLink("v1", "p2", "publish", 1)
	b.AddTermCount("p1", "text", 0, 3)
	b.AddTermCount("p1", "text", 4, 1)
	b.AddTermCount("p2", "text", 4, 2)
	b.AddNumeric("p1", "score", 0.5)
	b.AddNumeric("p1", "score", 0.7)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildBasicShape(t *testing.T) {
	net := buildToy(t)
	if net.NumObjects() != 5 {
		t.Errorf("objects = %d", net.NumObjects())
	}
	if net.NumEdges() != 10 {
		t.Errorf("edges = %d", net.NumEdges())
	}
	if net.NumRelations() != 4 {
		t.Errorf("relations = %d", net.NumRelations())
	}
	if got := net.Types(); len(got) != 3 {
		t.Errorf("types = %v", got)
	}
	if len(net.ObjectsOfType("author")) != 2 || len(net.ObjectsOfType("paper")) != 2 || len(net.ObjectsOfType("venue")) != 1 {
		t.Error("type partition wrong")
	}
	if len(net.ObjectsOfType("nonexistent")) != 0 {
		t.Error("unknown type should have no members")
	}
}

func TestIndexLookups(t *testing.T) {
	net := buildToy(t)
	v, ok := net.IndexOf("p1")
	if !ok {
		t.Fatal("p1 not found")
	}
	if net.Object(v).ID != "p1" || net.TypeOf(v) != "paper" {
		t.Error("object lookup mismatch")
	}
	if _, ok := net.IndexOf("ghost"); ok {
		t.Error("ghost should not resolve")
	}
	r, ok := net.RelationID("write")
	if !ok || net.RelationName(r) != "write" {
		t.Error("relation lookup mismatch")
	}
	if _, ok := net.RelationID("ghost_rel"); ok {
		t.Error("ghost relation should not resolve")
	}
	a, ok := net.AttrID("text")
	if !ok || net.Attr(a).Name != "text" || net.Attr(a).Kind != Categorical {
		t.Error("attribute lookup mismatch")
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	net := buildToy(t)
	// Every edge appears exactly once in its source's out-list and once in
	// its target's in-list.
	outSeen := 0
	for v := 0; v < net.NumObjects(); v++ {
		for _, e := range net.OutEdges(v) {
			if e.From != v {
				t.Fatalf("out-edge of %d has From=%d", v, e.From)
			}
			outSeen++
		}
		if net.OutDegree(v) != len(net.OutEdges(v)) {
			t.Error("OutDegree mismatch")
		}
	}
	if outSeen != net.NumEdges() {
		t.Errorf("out-lists cover %d edges, want %d", outSeen, net.NumEdges())
	}
	inSeen := 0
	for v := 0; v < net.NumObjects(); v++ {
		from, rels, weights := net.InLinks(v)
		if len(rels) != len(from) || len(weights) != len(from) {
			t.Fatalf("in-link arrays of %d disagree on length", v)
		}
		for j, u := range from {
			found := false
			for _, e := range net.OutEdges(u) {
				if e.To == v && e.Rel == rels[j] && e.Weight == weights[j] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("in-link %d of object %d (from %d rel %d) has no matching out-edge", j, v, u, rels[j])
			}
			inSeen++
		}
		if net.InDegree(v) != len(from) {
			t.Error("InDegree mismatch")
		}
	}
	if inSeen != net.NumEdges() {
		t.Errorf("in-lists cover %d edges, want %d", inSeen, net.NumEdges())
	}
}

func TestEdgesSortedDeterministically(t *testing.T) {
	net := buildToy(t)
	es := net.Edges()
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a.From > b.From {
			t.Fatal("edges not sorted by From")
		}
		if a.From == b.From && a.Rel > b.Rel {
			t.Fatal("edges not sorted by Rel within From")
		}
		if a.From == b.From && a.Rel == b.Rel && a.To > b.To {
			t.Fatal("edges not sorted by To within (From, Rel)")
		}
	}
}

func TestObservations(t *testing.T) {
	net := buildToy(t)
	text, _ := net.AttrID("text")
	score, _ := net.AttrID("score")
	p1, _ := net.IndexOf("p1")
	p2, _ := net.IndexOf("p2")
	a1, _ := net.IndexOf("a1")

	tcs := net.TermCounts(text, p1)
	if len(tcs) != 2 || tcs[0].Term != 0 || tcs[0].Count != 3 || tcs[1].Term != 4 || tcs[1].Count != 1 {
		t.Errorf("p1 term counts = %v", tcs)
	}
	if !net.HasObservation(text, p1) || !net.HasObservation(text, p2) {
		t.Error("papers should have text")
	}
	if net.HasObservation(text, a1) {
		t.Error("author has no text in this toy network (incomplete attribute)")
	}
	if net.ObservationCount(text, p1) != 4 {
		t.Errorf("p1 text mass = %v", net.ObservationCount(text, p1))
	}
	xs := net.NumericObs(score, p1)
	if len(xs) != 2 || xs[0] != 0.5 {
		t.Errorf("p1 score obs = %v", xs)
	}
	if net.ObservationCount(score, p2) != 0 {
		t.Error("p2 should have no score observations")
	}
}

func TestObservationKindPanics(t *testing.T) {
	net := buildToy(t)
	text, _ := net.AttrID("text")
	score, _ := net.AttrID("score")
	p1, _ := net.IndexOf("p1")
	assertPanics(t, func() { net.TermCounts(score, p1) }, "TermCounts on numeric attr")
	assertPanics(t, func() { net.NumericObs(text, p1) }, "NumericObs on categorical attr")
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestTermCountAccumulates(t *testing.T) {
	b := NewBuilder()
	b.DeclareAttribute(AttrSpec{Name: "text", Kind: Categorical, VocabSize: 5})
	b.AddObject("o", "thing")
	b.AddTermCount("o", "text", 2, 1)
	b.AddTermCount("o", "text", 2, 2.5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.AttrID("text")
	v, _ := net.IndexOf("o")
	tcs := net.TermCounts(a, v)
	if len(tcs) != 1 || tcs[0].Count != 3.5 {
		t.Errorf("accumulated counts = %v", tcs)
	}
}

func TestBuilderValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		prep func(b *Builder)
	}{
		{"empty object id", func(b *Builder) { b.AddObject("", "t") }},
		{"empty type", func(b *Builder) { b.AddObject("x", "") }},
		{"retyped object", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("x", "b") }},
		{"unknown link endpoint", func(b *Builder) { b.AddObject("x", "a"); b.AddLink("x", "ghost", "r", 1) }},
		{"zero weight", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("y", "a"); b.AddLink("x", "y", "r", 0) }},
		{"negative weight", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("y", "a"); b.AddLink("x", "y", "r", -1) }},
		{"NaN weight", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("y", "a"); b.AddLink("x", "y", "r", math.NaN()) }},
		{"Inf weight", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("y", "a"); b.AddLink("x", "y", "r", math.Inf(1)) }},
		{"empty relation", func(b *Builder) { b.AddObject("x", "a"); b.AddObject("y", "a"); b.AddLink("x", "y", "", 1) }},
		{"categorical without vocab", func(b *Builder) { b.AddObject("x", "a"); b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical}) }},
		{"unnamed attribute", func(b *Builder) { b.AddObject("x", "a"); b.DeclareAttribute(AttrSpec{Kind: Numeric}) }},
		{"redeclared attribute", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Numeric})
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical, VocabSize: 3})
		}},
		{"obs on unknown object", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Numeric})
			b.AddNumeric("ghost", "t", 1)
		}},
		{"obs on undeclared attr", func(b *Builder) { b.AddObject("x", "a"); b.AddNumeric("x", "ghost", 1) }},
		{"term out of vocab", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical, VocabSize: 3})
			b.AddTermCount("x", "t", 3, 1)
		}},
		{"negative term", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical, VocabSize: 3})
			b.AddTermCount("x", "t", -1, 1)
		}},
		{"non-positive count", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical, VocabSize: 3})
			b.AddTermCount("x", "t", 0, 0)
		}},
		{"numeric obs on categorical attr", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Categorical, VocabSize: 3})
			b.AddNumeric("x", "t", 1)
		}},
		{"term obs on numeric attr", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Numeric})
			b.AddTermCount("x", "t", 0, 1)
		}},
		{"NaN numeric obs", func(b *Builder) {
			b.AddObject("x", "a")
			b.DeclareAttribute(AttrSpec{Name: "t", Kind: Numeric})
			b.AddNumeric("x", "t", math.NaN())
		}},
	}
	for _, c := range cases {
		b := NewBuilder()
		c.prep(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build should have failed", c.name)
		}
	}
}

func TestBuildEmptyNetwork(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty network should be rejected")
	}
}

func TestAddObjectIdempotent(t *testing.T) {
	b := NewBuilder()
	v1 := b.AddObject("x", "a")
	v2 := b.AddObject("x", "a")
	if v1 != v2 {
		t.Error("re-adding same object should return same index")
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumObjects() != 1 {
		t.Error("duplicate AddObject created extra object")
	}
}

func TestStats(t *testing.T) {
	net := buildToy(t)
	s := net.Stats()
	if s.Objects != 5 || s.Edges != 10 || s.Relations != 4 || s.Attributes != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.TypeCounts["author"] != 2 || s.RelCounts["write"] != 3 {
		t.Errorf("stats detail = %+v", s)
	}
	if s.ObservedObjs["text"] != 2 || s.ObservedObjs["score"] != 1 {
		t.Errorf("observation counts = %+v", s.ObservedObjs)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	net := buildToy(t)
	data, err := net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSONLimited(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	assertNetworksEqual(t, net, back)
}

func TestJSONFileRoundTrip(t *testing.T) {
	net := buildToy(t)
	path := t.TempDir() + "/net.json"
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFileLimited(path, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	assertNetworksEqual(t, net, back)
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSONLimited([]byte("{not json"), Limits{}); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, err := FromJSONLimited([]byte(`{"attributes":[{"name":"x","kind":"mystery"}],"objects":[{"id":"a","type":"t"}]}`), Limits{}); err == nil {
		t.Error("unknown attribute kind should error")
	}
	if _, err := FromJSONLimited([]byte(`{"objects":[]}`), Limits{}); err == nil {
		t.Error("empty object list should error")
	}
}

func assertNetworksEqual(t *testing.T, a, b *Network) {
	t.Helper()
	if a.NumObjects() != b.NumObjects() || a.NumEdges() != b.NumEdges() ||
		a.NumRelations() != b.NumRelations() || a.NumAttrs() != b.NumAttrs() {
		t.Fatalf("shape mismatch: %v vs %v", a.Stats(), b.Stats())
	}
	for v := 0; v < a.NumObjects(); v++ {
		oa := a.Object(v)
		vb, ok := b.IndexOf(oa.ID)
		if !ok {
			t.Fatalf("object %q missing after round trip", oa.ID)
		}
		if b.Object(vb).Type != oa.Type {
			t.Fatalf("object %q type changed", oa.ID)
		}
	}
	// Compare edges as multisets of (fromID, toID, rel, weight).
	key := func(n *Network, e Edge) string {
		return n.Object(e.From).ID + "|" + n.Object(e.To).ID + "|" + n.RelationName(e.Rel)
	}
	edgeCount := map[string]float64{}
	for _, e := range a.Edges() {
		edgeCount[key(a, e)] += e.Weight
	}
	for _, e := range b.Edges() {
		edgeCount[key(b, e)] -= e.Weight
	}
	for k, v := range edgeCount {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("edge %s weight mismatch %v", k, v)
		}
	}
	// Compare observations.
	for ai := 0; ai < a.NumAttrs(); ai++ {
		spec := a.Attr(ai)
		bi, ok := b.AttrID(spec.Name)
		if !ok {
			t.Fatalf("attribute %q lost", spec.Name)
		}
		for v := 0; v < a.NumObjects(); v++ {
			vb, _ := b.IndexOf(a.Object(v).ID)
			switch spec.Kind {
			case Categorical:
				ta := a.TermCounts(ai, v)
				tb := b.TermCounts(bi, vb)
				if len(ta) != len(tb) {
					t.Fatalf("term counts length mismatch on %q", a.Object(v).ID)
				}
				for i := range ta {
					if ta[i] != tb[i] {
						t.Fatalf("term counts mismatch on %q: %v vs %v", a.Object(v).ID, ta[i], tb[i])
					}
				}
			case Numeric:
				xa := a.NumericObs(ai, v)
				xb := b.NumericObs(bi, vb)
				if len(xa) != len(xb) {
					t.Fatalf("numeric obs length mismatch on %q", a.Object(v).ID)
				}
				for i := range xa {
					if xa[i] != xb[i] {
						t.Fatalf("numeric obs mismatch on %q", a.Object(v).ID)
					}
				}
			}
		}
	}
}

// TestRandomNetworkInvariantsQuick property-tests Build on random networks:
// CSR adjacency must partition the edge set regardless of insertion order.
func TestRandomNetworkInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		nObj := 2 + rng.Intn(40)
		types := []string{"t0", "t1", "t2"}
		ids := make([]string, nObj)
		for i := 0; i < nObj; i++ {
			ids[i] = "o" + string(rune('A'+i%26)) + string(rune('0'+i/26))
			b.AddObject(ids[i], types[rng.Intn(len(types))])
		}
		rels := []string{"r0", "r1"}
		nEdges := rng.Intn(120)
		for i := 0; i < nEdges; i++ {
			b.AddLink(ids[rng.Intn(nObj)], ids[rng.Intn(nObj)], rels[rng.Intn(2)], 0.1+rng.Float64())
		}
		net, err := b.Build()
		if err != nil {
			return false
		}
		if net.NumEdges() != nEdges {
			return false
		}
		var covered int
		for v := 0; v < net.NumObjects(); v++ {
			covered += net.OutDegree(v)
			if net.OutDegree(v) < 0 {
				return false
			}
		}
		if covered != nEdges {
			return false
		}
		covered = 0
		for v := 0; v < net.NumObjects(); v++ {
			covered += net.InDegree(v)
		}
		return covered == nEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
