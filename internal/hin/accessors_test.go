package hin

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should show its value")
	}
}

func TestRelationsAndAttrsAccessors(t *testing.T) {
	net := buildToy(t)
	rels := net.Relations()
	if len(rels) != net.NumRelations() {
		t.Error("Relations length mismatch")
	}
	for r, name := range rels {
		if net.RelationName(r) != name {
			t.Error("Relations order mismatch")
		}
	}
	attrs := net.Attrs()
	if len(attrs) != net.NumAttrs() {
		t.Error("Attrs length mismatch")
	}
	for a, spec := range attrs {
		if net.Attr(a) != spec {
			t.Error("Attrs order mismatch")
		}
	}
}

func TestWriteTo(t *testing.T) {
	net := buildToy(t)
	var buf bytes.Buffer
	n, err := net.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || buf.Len() == 0 {
		t.Errorf("WriteTo reported %d bytes for %d written", n, buf.Len())
	}
	back, err := FromJSONLimited(buf.Bytes(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects() != net.NumObjects() {
		t.Error("WriteTo stream does not round-trip")
	}
}

func TestSaveFileErrorPath(t *testing.T) {
	net := buildToy(t)
	if err := net.SaveFile("/nonexistent-dir/zzz/net.json"); err == nil {
		t.Error("writing to a bogus path should fail")
	}
	if _, err := LoadFileLimited("/nonexistent-dir/zzz/net.json", Limits{}); err == nil {
		t.Error("loading a bogus path should fail")
	}
}
