package hin

import (
	"strings"
	"testing"
)

func TestInferSchemaToy(t *testing.T) {
	net := buildToy(t)
	schema, err := InferSchema(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.ObjectTypes) != 3 {
		t.Errorf("types = %v", schema.ObjectTypes)
	}
	got := map[string][2]string{}
	for _, sig := range schema.Relations {
		got[sig.Relation] = [2]string{sig.SrcType, sig.DstType}
	}
	want := map[string][2]string{
		"write":        {"author", "paper"},
		"written_by":   {"paper", "author"},
		"published_by": {"paper", "venue"},
		"publish":      {"venue", "paper"},
	}
	for rel, pair := range want {
		if got[rel] != pair {
			t.Errorf("%s = %v, want %v", rel, got[rel], pair)
		}
	}
	if err := schema.Validate(net); err != nil {
		t.Errorf("self-validation failed: %v", err)
	}
	if s := schema.String(); !strings.Contains(s, "write: author -> paper") {
		t.Errorf("String() = %q", s)
	}
}

func TestInferSchemaRejectsMixedRelation(t *testing.T) {
	b := NewBuilder()
	b.AddObject("a", "alpha")
	b.AddObject("b", "beta")
	b.AddObject("c", "gamma")
	b.AddLink("a", "b", "touches", 1)
	b.AddLink("a", "c", "touches", 1) // same relation, different target type
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferSchema(net); err == nil {
		t.Error("mixed-signature relation should be rejected")
	}
}

func TestSchemaValidateRejectsViolations(t *testing.T) {
	net := buildToy(t)
	schema, err := InferSchema(net)
	if err != nil {
		t.Fatal(err)
	}
	// A network using an undeclared relation fails.
	b := NewBuilder()
	b.AddObject("x", "author")
	b.AddObject("y", "paper")
	b.AddLink("x", "y", "mystery", 1)
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(other); err == nil {
		t.Error("undeclared relation should fail validation")
	}
	// A network whose edge types contradict the signature fails.
	b2 := NewBuilder()
	b2.AddObject("x", "venue") // wrong: write is author → paper
	b2.AddObject("y", "paper")
	b2.AddLink("x", "y", "write", 1)
	other2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.Validate(other2); err == nil {
		t.Error("signature violation should fail validation")
	}
}

func TestInferSchemaNilAndEdgeless(t *testing.T) {
	if _, err := InferSchema(nil); err == nil {
		t.Error("nil network should error")
	}
	if (&Schema{}).Validate(nil) == nil {
		t.Error("nil network validation should error")
	}
	// A relation with edges removed still appears, with empty types.
	net := buildToy(t)
	writeRel, _ := net.RelationID("write")
	filtered, err := FilterEdges(net, func(e Edge) bool { return e.Rel != writeRel })
	if err != nil {
		t.Fatal(err)
	}
	schema, err := InferSchema(filtered)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sig := range schema.Relations {
		if sig.Relation == "write" {
			found = true
			if sig.SrcType != "" || sig.DstType != "" {
				t.Errorf("edgeless relation should have empty types, got %+v", sig)
			}
		}
	}
	if !found {
		t.Error("edgeless relation missing from schema")
	}
	if !strings.Contains(schema.String(), "(no edges)") {
		t.Error("String() should mark edgeless relations")
	}
}
