package eval_test

import (
	"fmt"
	"testing"

	"genclus/internal/core"
	"genclus/internal/eval"
	"genclus/internal/hin"
	"genclus/internal/infer"
)

// buildHoldoutNet assembles the two-topic citation network of the fold-in
// cross-check, omitting the objects in skip (and every link touching
// them): the training network is literally "the complete network with the
// held-out objects removed", which is what fold-in inference is supposed
// to compensate for.
func buildHoldoutNet(t *testing.T, perTopic int, skip map[string]bool) (*hin.Network, map[int]int) {
	t.Helper()
	b := hin.NewBuilder()
	b.DeclareAttribute(hin.AttrSpec{Name: "text", Kind: hin.Categorical, VocabSize: 40})
	topicOf := make(map[string]int)
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = fmt.Sprintf("d%d_%03d", topic, i)
			topicOf[ids[i]] = topic
			if skip[ids[i]] {
				continue
			}
			b.AddObject(ids[i], "doc")
			for w := 0; w < 8; w++ {
				b.AddTermCount(ids[i], "text", topic*20+(i+w)%20, 1)
			}
		}
		for i, id := range ids {
			for _, to := range []string{ids[(i+1)%perTopic], ids[(i+7)%perTopic]} {
				if skip[id] || skip[to] {
					continue
				}
				b.AddLink(id, to, "cites", 1)
			}
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[int]int)
	for v := 0; v < net.NumObjects(); v++ {
		truth[v] = topicOf[net.Object(v).ID]
	}
	return net, truth
}

// holdoutQuery rebuilds one held-out object's evidence against the train
// network: its text observation plus only those of its links whose targets
// survived the holdout.
func holdoutQuery(id string, topic, i, perTopic int, train *hin.Network) infer.Query {
	q := infer.Query{ID: id}
	for w := 0; w < 8; w++ {
		q.Terms = appendTerm(q.Terms, "text", topic*20+(i+w)%20, 1)
	}
	for _, j := range []int{(i + 1) % perTopic, (i + 7) % perTopic} {
		to := fmt.Sprintf("d%d_%03d", topic, j)
		if _, ok := train.IndexOf(to); ok {
			q.Links = append(q.Links, infer.Link{Relation: "cites", To: to, Weight: 1})
		}
	}
	return q
}

func appendTerm(obs []infer.CatObs, attr string, term int, count float64) []infer.CatObs {
	for i := range obs {
		if obs[i].Attr == attr {
			obs[i].Terms = append(obs[i].Terms, hin.TermCount{Term: term, Count: count})
			return obs
		}
	}
	return append(obs, infer.CatObs{Attr: attr, Terms: []hin.TermCount{{Term: term, Count: count}}})
}

// TestFoldInHoldoutMatchesFullFit is the correctness cross-check of the
// online inference subsystem: fit a model on the network minus every
// tenth object, fold the held-out objects back in, and compare against a
// full fit of the complete network. The fold-in assignments must (a)
// agree with the train fit's own clusters — ≥ 95% of held-out objects
// land on the majority cluster of their topic — and (b) score an NMI
// against ground truth within a fixed margin of what the full fit
// achieves on the same held-out subset. That bounds how much assignment
// quality the read-only fold-in path gives up versus refitting the
// complete network.
func TestFoldInHoldoutMatchesFullFit(t *testing.T) {
	const perTopic = 80
	skip := make(map[string]bool)
	type heldOut struct {
		id       string
		topic, i int
	}
	var held []heldOut
	for topic := 0; topic < 2; topic++ {
		for i := 5; i < perTopic; i += 10 {
			id := fmt.Sprintf("d%d_%03d", topic, i)
			skip[id] = true
			held = append(held, heldOut{id: id, topic: topic, i: i})
		}
	}

	full, fullTruth := buildHoldoutNet(t, perTopic, nil)
	train, _ := buildHoldoutNet(t, perTopic, skip)
	if train.NumObjects() != full.NumObjects()-len(held) {
		t.Fatalf("holdout construction wrong: %d train objects for %d full minus %d held",
			train.NumObjects(), full.NumObjects(), len(held))
	}

	opts := core.DefaultOptions(2)
	opts.Seed = 2 // separates the topics on both the full and train networks
	opts.EMTol = 1e-9
	opts.OuterTol = 1e-9
	fullModel, err := core.Fit(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	trainModel, err := core.Fit(train, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := infer.NewEngine(trainModel, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]infer.Query, len(held))
	for i, h := range held {
		queries[i] = holdoutQuery(h.id, h.topic, h.i, perTopic, train)
	}
	folded, err := eng.AssignBatch(queries)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Agreement with the train fit: map each topic to the train
	// model's majority cluster and count fold-in hits.
	trainLabels := trainModel.HardLabels()
	var counts [2][2]int
	for v := 0; v < train.NumObjects(); v++ {
		topic := 0
		if train.Object(v).ID[1] == '1' {
			topic = 1
		}
		counts[topic][trainLabels[v]]++
	}
	majority := [2]int{}
	for topic := 0; topic < 2; topic++ {
		if counts[topic][1] > counts[topic][0] {
			majority[topic] = 1
		}
	}
	if majority[0] == majority[1] {
		t.Fatalf("train fit failed to separate the topics: %v", counts)
	}
	hits := 0
	for i, a := range folded {
		if a.Cluster == majority[held[i].topic] {
			hits++
		}
	}
	accuracy := float64(hits) / float64(len(folded))
	if accuracy < 0.95 {
		t.Errorf("fold-in accuracy vs train clusters = %.3f (%d/%d), want ≥ 0.95", accuracy, hits, len(folded))
	}

	// (b) NMI on the held-out subset, fold-in vs full fit, fixed margin.
	fullLabels := fullModel.HardLabels()
	var foldPred, fullPred, truthSub []int
	for i, h := range held {
		v, ok := full.IndexOf(h.id)
		if !ok {
			t.Fatalf("held-out %s missing from full network", h.id)
		}
		foldPred = append(foldPred, folded[i].Cluster)
		fullPred = append(fullPred, fullLabels[v])
		truthSub = append(truthSub, fullTruth[v])
	}
	nmiFold, err := eval.NMI(foldPred, truthSub)
	if err != nil {
		t.Fatal(err)
	}
	nmiFull, err := eval.NMI(fullPred, truthSub)
	if err != nil {
		t.Fatal(err)
	}
	const margin = 0.10
	t.Logf("held-out NMI: fold-in %.4f vs full fit %.4f (margin %.2f), accuracy %.3f", nmiFold, nmiFull, margin, accuracy)
	if nmiFold < nmiFull-margin {
		t.Errorf("fold-in NMI %.4f more than %.2f below full-fit NMI %.4f", nmiFold, margin, nmiFull)
	}
}
