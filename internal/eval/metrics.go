// Package eval implements the two effectiveness measures of the paper's §5.2
// — Normalized Mutual Information against ground-truth labels (Strehl &
// Ghosh) and link-prediction Mean Average Precision — plus the three
// membership-similarity functions compared in Tables 2–4 (cosine, negative
// Euclidean distance, negative cross entropy).
package eval

import (
	"fmt"
	"math"
	"sort"

	"genclus/internal/hin"
	"genclus/internal/stats"
)

// NMI computes the normalized mutual information between two labelings of
// the same objects: I(X;Y)/√(H(X)·H(Y)). It is 1 for identical partitions
// (up to renaming) and ≈ 0 for independent ones. Degenerate cases where one
// side has a single cluster yield 0 by convention.
func NMI(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: NMI length mismatch %d vs %d", len(pred), len(truth))
	}
	n := len(pred)
	if n == 0 {
		return 0, fmt.Errorf("eval: NMI of empty labeling")
	}
	joint := make(map[[2]int]float64)
	px := make(map[int]float64)
	py := make(map[int]float64)
	for i := range pred {
		joint[[2]int{pred[i], truth[i]}]++
		px[pred[i]]++
		py[truth[i]]++
	}
	fn := float64(n)
	var mi float64
	for key, c := range joint {
		pxy := c / fn
		mi += pxy * math.Log(pxy/(px[key[0]]/fn*py[key[1]]/fn))
	}
	var hx, hy float64
	for _, c := range px {
		p := c / fn
		hx -= p * math.Log(p)
	}
	for _, c := range py {
		p := c / fn
		hy -= p * math.Log(p)
	}
	if hx == 0 || hy == 0 {
		return 0, nil
	}
	nmi := mi / math.Sqrt(hx*hy)
	// Guard tiny negative values from floating point.
	if nmi < 0 && nmi > -1e-12 {
		nmi = 0
	}
	return nmi, nil
}

// NMIOnSubset evaluates NMI over the given object indices, reading predicted
// labels from pred (dense, all objects) and truth from the labels map.
func NMIOnSubset(objs []int, pred []int, truth map[int]int) (float64, error) {
	if len(objs) == 0 {
		return 0, fmt.Errorf("eval: empty evaluation subset")
	}
	p := make([]int, 0, len(objs))
	tr := make([]int, 0, len(objs))
	for _, v := range objs {
		lab, ok := truth[v]
		if !ok {
			return 0, fmt.Errorf("eval: object %d has no ground-truth label", v)
		}
		if v < 0 || v >= len(pred) {
			return 0, fmt.Errorf("eval: object %d outside prediction range", v)
		}
		p = append(p, pred[v])
		tr = append(tr, lab)
	}
	return NMI(p, tr)
}

// HardLabels converts a soft membership matrix to argmax labels.
func HardLabels(theta [][]float64) []int {
	out := make([]int, len(theta))
	for v, row := range theta {
		out[v] = stats.ArgMax(row)
	}
	return out
}

// Similarity scores a (query, candidate) membership pair; higher means the
// candidate ranks earlier. The three instances below are the functions of
// §5.2.2.
type Similarity struct {
	Name string
	Func func(query, candidate []float64) float64
}

// Cosine similarity cos(θ_i, θ_j).
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for k := range a {
		dot += a[k] * b[k]
		na += a[k] * a[k]
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// NegEuclidean is −‖θ_i − θ_j‖.
func NegEuclidean(a, b []float64) float64 {
	var ss float64
	for k := range a {
		d := a[k] - b[k]
		ss += d * d
	}
	return -math.Sqrt(ss)
}

// NegCrossEntropy is −H(θ_j, θ_i) = Σ_k θ_jk·log θ_ik with the query as i
// and the candidate as j — the asymmetric function the paper finds best.
func NegCrossEntropy(query, candidate []float64) float64 {
	var s float64
	for k := range query {
		if candidate[k] == 0 {
			continue
		}
		lq := math.Log(query[k])
		s += candidate[k] * lq
	}
	return s
}

// Similarities returns the three similarity functions in the order the
// paper's tables list them.
func Similarities() []Similarity {
	return []Similarity{
		{Name: "cos(θi,θj)", Func: Cosine},
		{Name: "-||θi-θj||", Func: NegEuclidean},
		{Name: "-H(θj,θi)", Func: NegCrossEntropy},
	}
}

// AveragePrecision computes AP for one ranked list: ranked is the candidate
// order (best first), relevant the set of correct candidates. Standard
// definition: mean over relevant ranks of precision-at-that-rank.
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	var hits int
	var sum float64
	for pos, cand := range ranked {
		if relevant[cand] {
			hits++
			sum += float64(hits) / float64(pos+1)
		}
	}
	return sum / float64(len(relevant))
}

// LinkPredictionMAP evaluates how well memberships predict the links of one
// relation (§5.2.2): for every source object of the relation, candidates of
// the relation's target type are ranked by sim(θ_source, θ_candidate) and
// scored by MAP against the actually linked targets.
//
// Queries with no out-link of the relation are skipped (no ground truth to
// score). Ties in similarity are broken by object index for determinism.
func LinkPredictionMAP(net *hin.Network, theta [][]float64, relation string, sim Similarity) (float64, error) {
	rel, ok := net.RelationID(relation)
	if !ok {
		return 0, fmt.Errorf("eval: relation %q not in network", relation)
	}
	if len(theta) != net.NumObjects() {
		return 0, fmt.Errorf("eval: theta has %d rows for %d objects", len(theta), net.NumObjects())
	}
	// Determine the relation's source and target types from its edges.
	var srcType, dstType string
	for _, e := range net.Edges() {
		if e.Rel == rel {
			srcType = net.TypeOf(e.From)
			dstType = net.TypeOf(e.To)
			break
		}
	}
	if srcType == "" {
		return 0, fmt.Errorf("eval: relation %q has no edges", relation)
	}
	candidates := net.ObjectsOfType(dstType)
	if len(candidates) == 0 {
		return 0, fmt.Errorf("eval: no candidates of type %q", dstType)
	}

	type scored struct {
		obj   int
		score float64
	}
	var apSum float64
	var queries int
	for _, q := range net.ObjectsOfType(srcType) {
		relevant := make(map[int]bool)
		for _, e := range net.OutEdges(q) {
			if e.Rel == rel {
				relevant[e.To] = true
			}
		}
		if len(relevant) == 0 {
			continue
		}
		list := make([]scored, 0, len(candidates))
		for _, c := range candidates {
			if c == q {
				continue
			}
			list = append(list, scored{obj: c, score: sim.Func(theta[q], theta[c])})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].score != list[j].score {
				return list[i].score > list[j].score
			}
			return list[i].obj < list[j].obj
		})
		ranked := make([]int, len(list))
		for i, s := range list {
			ranked[i] = s.obj
		}
		apSum += AveragePrecision(ranked, relevant)
		queries++
	}
	if queries == 0 {
		return 0, fmt.Errorf("eval: no queries with links of relation %q", relation)
	}
	return apSum / float64(queries), nil
}

// LinkPredictionMAPHoldout scores true out-of-sample prediction: theta was
// fitted on a training network from which the heldOut edges were removed;
// for every query with at least one held-out edge, candidates of the
// relation's target type are ranked by similarity — excluding the query's
// remaining training links, which the model has already seen — and the
// held-out targets are the relevant set.
//
// trainNet must be the network the model was fitted on (it supplies the
// known positives to exclude); heldOut the removed edges of the relation.
func LinkPredictionMAPHoldout(trainNet *hin.Network, theta [][]float64, relation string, heldOut []hin.Edge, sim Similarity) (float64, error) {
	rel, ok := trainNet.RelationID(relation)
	if !ok {
		return 0, fmt.Errorf("eval: relation %q not in network", relation)
	}
	if len(theta) != trainNet.NumObjects() {
		return 0, fmt.Errorf("eval: theta has %d rows for %d objects", len(theta), trainNet.NumObjects())
	}
	relevant := make(map[int]map[int]bool)
	var dstType string
	for _, e := range heldOut {
		if e.Rel != rel {
			continue
		}
		if relevant[e.From] == nil {
			relevant[e.From] = make(map[int]bool)
		}
		relevant[e.From][e.To] = true
		dstType = trainNet.TypeOf(e.To)
	}
	if len(relevant) == 0 {
		return 0, fmt.Errorf("eval: no held-out edges of relation %q", relation)
	}
	candidates := trainNet.ObjectsOfType(dstType)

	type scored struct {
		obj   int
		score float64
	}
	var apSum float64
	var queries int
	for q, rel_q := range relevant {
		seen := make(map[int]bool)
		for _, e := range trainNet.OutEdges(q) {
			if e.Rel == rel {
				seen[e.To] = true
			}
		}
		list := make([]scored, 0, len(candidates))
		for _, c := range candidates {
			if c == q || seen[c] {
				continue
			}
			list = append(list, scored{obj: c, score: sim.Func(theta[q], theta[c])})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].score != list[j].score {
				return list[i].score > list[j].score
			}
			return list[i].obj < list[j].obj
		})
		ranked := make([]int, len(list))
		for i, s := range list {
			ranked[i] = s.obj
		}
		apSum += AveragePrecision(ranked, rel_q)
		queries++
	}
	return apSum / float64(queries), nil
}

// MeanStd summarizes a series of per-run metric values.
type MeanStd struct {
	Mean, Std float64
	N         int
}

// Summarize computes mean and population standard deviation (matching the
// paper's 20-run mean/std bars in Figs. 5–6).
func Summarize(values []float64) MeanStd {
	if len(values) == 0 {
		return MeanStd{Mean: math.NaN(), Std: math.NaN()}
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return MeanStd{Mean: mean, Std: math.Sqrt(ss / float64(len(values))), N: len(values)}
}
