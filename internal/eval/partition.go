package eval

import (
	"fmt"
)

// AdjustedRandIndex computes the chance-corrected Rand index between two
// labelings of the same objects. 1 for identical partitions (up to
// renaming), ≈0 for independent ones, negative for anti-correlated ones.
// A standard companion to NMI for clustering evaluation.
func AdjustedRandIndex(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: ARI length mismatch %d vs %d", len(pred), len(truth))
	}
	n := len(pred)
	if n == 0 {
		return 0, fmt.Errorf("eval: ARI of empty labeling")
	}
	joint := make(map[[2]int]float64)
	rows := make(map[int]float64)
	cols := make(map[int]float64)
	for i := range pred {
		joint[[2]int{pred[i], truth[i]}]++
		rows[pred[i]]++
		cols[truth[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumJoint, sumRows, sumCols float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range rows {
		sumRows += choose2(c)
	}
	for _, c := range cols {
		sumCols += choose2(c)
	}
	total := choose2(float64(n))
	if total == 0 {
		return 0, fmt.Errorf("eval: ARI needs ≥ 2 objects")
	}
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. both single-cluster): define as 0.
		return 0, nil
	}
	return (sumJoint - expected) / (maxIndex - expected), nil
}

// Purity computes the weighted fraction of objects sitting in their
// cluster's majority ground-truth class. 1 for perfect (possibly
// over-split) clusterings; tends to 1 trivially as the number of predicted
// clusters grows, so read it together with NMI/ARI.
func Purity(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: purity length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("eval: purity of empty labeling")
	}
	counts := make(map[int]map[int]int)
	for i := range pred {
		m := counts[pred[i]]
		if m == nil {
			m = make(map[int]int)
			counts[pred[i]] = m
		}
		m[truth[i]]++
	}
	var correct int
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred)), nil
}
