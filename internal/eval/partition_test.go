package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestARIIdentical(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRandIndex(labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(x,x) = %v", got)
	}
	// Renamed partition is still perfect.
	renamed := []int{5, 5, 3, 3, 9, 9}
	got, err = AdjustedRandIndex(renamed, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI under renaming = %v", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Classic example: pred = {a,a,b,b,b,c}, truth = {x,x,x,y,y,y}.
	pred := []int{0, 0, 1, 1, 1, 2}
	truth := []int{0, 0, 0, 1, 1, 1}
	// Contingency: c(0,·)=(2,0), c(1,·)=(1,2), c(2,·)=(0,1).
	// sumJoint = 1 + (0+1) = 2; rows: C(2,2)+C(3,2)+C(1,2) = 1+3+0 = 4;
	// cols: C(3,2)+C(3,2) = 6; total = C(6,2) = 15.
	// expected = 4·6/15 = 1.6; max = 5; ARI = (2−1.6)/(5−1.6) = 0.1176…
	got, err := AdjustedRandIndex(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 - 1.6) / (5.0 - 1.6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ARI = %v, want %v", got, want)
	}
}

func TestARIDegenerate(t *testing.T) {
	// Both sides one cluster: convention 0.
	got, err := AdjustedRandIndex([]int{0, 0, 0}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("degenerate ARI = %v", got)
	}
}

func TestARIErrors(t *testing.T) {
	if _, err := AdjustedRandIndex([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := AdjustedRandIndex(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := AdjustedRandIndex([]int{0}, []int{0}); err == nil {
		t.Error("single object should error")
	}
}

func TestARIBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(4)
		}
		v, err := AdjustedRandIndex(pred, truth)
		if err != nil {
			return false
		}
		// ARI ≤ 1 always; can be slightly negative for anti-correlation.
		return v <= 1+1e-12 && v >= -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestARISymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		x, err1 := AdjustedRandIndex(a, b)
		y, err2 := AdjustedRandIndex(b, a)
		return err1 == nil && err2 == nil && math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPurity(t *testing.T) {
	// Clusters: {0,0,1} vs truth {a,a,b} → cluster0 majority a (2), cluster1
	// majority b (1) → purity 1.
	got, err := Purity([]int{0, 0, 1}, []int{7, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("purity = %v", got)
	}
	// Mixed cluster: {0,0,0,0} truth {a,a,b,c} → 2/4.
	got, err = Purity([]int{0, 0, 0, 0}, []int{1, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("purity = %v", got)
	}
}

func TestPurityOverSplitIsOne(t *testing.T) {
	// Singleton clusters are trivially pure — documented caveat.
	pred := []int{0, 1, 2, 3}
	truth := []int{0, 0, 1, 1}
	got, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("singleton purity = %v", got)
	}
}

func TestPurityErrors(t *testing.T) {
	if _, err := Purity([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestPurityAtLeastLargestClassFraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		pred := make([]int, n)
		truth := make([]int, n)
		classCount := map[int]int{}
		for i := range pred {
			pred[i] = rng.Intn(3)
			truth[i] = rng.Intn(3)
			classCount[truth[i]]++
		}
		largest := 0
		for _, c := range classCount {
			if c > largest {
				largest = c
			}
		}
		p, err := Purity(pred, truth)
		if err != nil {
			return false
		}
		// Per-cluster majorities sum to at least the global majority, so
		// purity is bounded below by the largest class fraction.
		return p+1e-12 >= float64(largest)/float64(n) && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
