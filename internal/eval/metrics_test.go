package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"genclus/internal/hin"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2, 0, 1}
	got, err := NMI(labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(x,x) = %v, want 1", got)
	}
}

func TestNMIPermutationInvariance(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	renamed := []int{2, 2, 0, 0, 1, 1} // same partition, different names
	got, err := NMI(renamed, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI invariant under renaming = %v, want 1", got)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// A perfectly crossed design has zero mutual information.
	pred := []int{0, 0, 1, 1, 0, 0, 1, 1}
	truth := []int{0, 1, 0, 1, 0, 1, 0, 1}
	got, err := NMI(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Errorf("NMI of independent partitions = %v, want 0", got)
	}
}

func TestNMISingleClusterConvention(t *testing.T) {
	got, err := NMI([]int{0, 0, 0}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("single-cluster NMI = %v, want 0", got)
	}
}

func TestNMIErrors(t *testing.T) {
	if _, err := NMI([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NMI(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestNMIRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(4)
		}
		v, err := NMI(pred, truth)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNMISymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		x, err1 := NMI(a, b)
		y, err2 := NMI(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNMIOnSubset(t *testing.T) {
	pred := []int{0, 1, 0, 1, 0}
	truth := map[int]int{0: 1, 1: 0, 3: 0}
	got, err := NMIOnSubset([]int{0, 1, 3}, pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// pred on subset = [0,1,1], truth = [1,0,0]: same partition renamed.
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("subset NMI = %v", got)
	}
	if _, err := NMIOnSubset([]int{4}, pred, truth); err == nil {
		t.Error("missing truth label should error")
	}
	if _, err := NMIOnSubset(nil, pred, truth); err == nil {
		t.Error("empty subset should error")
	}
	if _, err := NMIOnSubset([]int{9}, pred, map[int]int{9: 0}); err == nil {
		t.Error("out-of-range prediction index should error")
	}
}

func TestHardLabels(t *testing.T) {
	theta := [][]float64{{0.9, 0.1}, {0.2, 0.8}, {0.5, 0.5}}
	got := HardLabels(theta)
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("HardLabels = %v", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("cos of identical = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("cos of orthogonal = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Errorf("cos with zero vector = %v", got)
	}
}

func TestNegEuclidean(t *testing.T) {
	if got := NegEuclidean([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if got := NegEuclidean([]float64{1, 0}, []float64{0, 1}); math.Abs(got+math.Sqrt2) > 1e-12 {
		t.Errorf("corner distance = %v", got)
	}
}

func TestNegCrossEntropySelfOptimal(t *testing.T) {
	// Over candidates, the query's own distribution does NOT necessarily
	// maximize −H(θ_j, θ_i); a point mass on the query's argmax does. Verify
	// the asymmetric behaviour the paper exploits.
	query := []float64{0.7, 0.2, 0.1}
	point := []float64{1, 0, 0}
	self := NegCrossEntropy(query, query)
	pointScore := NegCrossEntropy(query, point)
	if pointScore <= self {
		t.Errorf("point-mass candidate should score higher: %v vs %v", pointScore, self)
	}
	// Asymmetry of the function itself.
	a := []float64{0.8, 0.1, 0.1}
	b := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if NegCrossEntropy(a, b) == NegCrossEntropy(b, a) {
		t.Error("cross entropy similarity should be asymmetric")
	}
}

func TestAveragePrecision(t *testing.T) {
	// Perfect ranking.
	if got := AveragePrecision([]int{1, 2, 3, 4}, map[int]bool{1: true, 2: true}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AP = %v", got)
	}
	// Relevant at ranks 2 and 4: AP = (1/2 + 2/4)/2 = 0.5.
	if got := AveragePrecision([]int{9, 1, 8, 2}, map[int]bool{1: true, 2: true}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mixed AP = %v", got)
	}
	// No relevant.
	if got := AveragePrecision([]int{1, 2}, nil); got != 0 {
		t.Errorf("empty-relevant AP = %v", got)
	}
	// Relevant item missing from ranking contributes zero precision mass.
	if got := AveragePrecision([]int{1}, map[int]bool{1: true, 99: true}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("missing-relevant AP = %v", got)
	}
}

func TestAveragePrecisionWorstCase(t *testing.T) {
	// Single relevant item ranked last of n: AP = 1/n.
	ranked := []int{5, 4, 3, 2, 1}
	got := AveragePrecision(ranked, map[int]bool{1: true})
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("last-place AP = %v", got)
	}
}

// linkPredNet builds a bipartite network where group-0 sources link to
// target t0 and group-1 sources link to t1.
func linkPredNet(t *testing.T) (*hin.Network, [][]float64) {
	t.Helper()
	b := hin.NewBuilder()
	b.AddObject("s0", "src")
	b.AddObject("s1", "src")
	b.AddObject("t0", "dst")
	b.AddObject("t1", "dst")
	b.AddLink("s0", "t0", "points", 1)
	b.AddLink("s1", "t1", "points", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	theta := make([][]float64, net.NumObjects())
	set := func(id string, v []float64) {
		idx, _ := net.IndexOf(id)
		theta[idx] = v
	}
	set("s0", []float64{0.9, 0.1})
	set("s1", []float64{0.1, 0.9})
	set("t0", []float64{0.85, 0.15})
	set("t1", []float64{0.15, 0.85})
	return net, theta
}

func TestLinkPredictionMAPPerfect(t *testing.T) {
	net, theta := linkPredNet(t)
	for _, sim := range Similarities() {
		got, err := LinkPredictionMAP(net, theta, "points", sim)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: MAP = %v, want 1 (memberships align with links)", sim.Name, got)
		}
	}
}

func TestLinkPredictionMAPAntiAligned(t *testing.T) {
	net, theta := linkPredNet(t)
	// Swap source memberships so similarity points to the wrong target:
	// each query has 2 candidates, correct one ranked second → AP = 1/2.
	s0, _ := net.IndexOf("s0")
	s1, _ := net.IndexOf("s1")
	theta[s0], theta[s1] = theta[s1], theta[s0]
	got, err := LinkPredictionMAP(net, theta, "points", Similarities()[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("anti-aligned MAP = %v, want 0.5", got)
	}
}

func TestLinkPredictionMAPErrors(t *testing.T) {
	net, theta := linkPredNet(t)
	if _, err := LinkPredictionMAP(net, theta, "ghost", Similarities()[0]); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := LinkPredictionMAP(net, theta[:1], "points", Similarities()[0]); err == nil {
		t.Error("short theta should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-12 || math.Abs(s.Std-2) > 1e-12 || s.N != 8 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty Summarize should be NaN")
	}
}

func TestSimilaritiesOrder(t *testing.T) {
	sims := Similarities()
	if len(sims) != 3 {
		t.Fatal("expected 3 similarity functions")
	}
	if sims[0].Name != "cos(θi,θj)" || sims[2].Name != "-H(θj,θi)" {
		t.Errorf("similarity order = %v, %v, %v", sims[0].Name, sims[1].Name, sims[2].Name)
	}
}
