package eval

import (
	"math"
	"testing"

	"genclus/internal/hin"
)

// holdoutFixture builds a bipartite network with two source groups and two
// target groups; sources link within their group. One edge is withheld.
func holdoutFixture(t *testing.T) (train *hin.Network, held []hin.Edge, theta [][]float64) {
	t.Helper()
	b := hin.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddObject("s"+string(rune('0'+i)), "src")
	}
	for i := 0; i < 4; i++ {
		b.AddObject("t"+string(rune('0'+i)), "dst")
	}
	link := func(s, d string) {
		b.AddLink(s, d, "points", 1)
	}
	// Group 0: s0, s1 → t0, t1. Group 1: s2, s3 → t2, t3.
	link("s0", "t0")
	// s0 → t1 is the held-out edge (not added).
	link("s1", "t0")
	link("s1", "t1")
	link("s2", "t2")
	link("s2", "t3")
	link("s3", "t2")
	link("s3", "t3")
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := net.IndexOf("s0")
	t1, _ := net.IndexOf("t1")
	rel, _ := net.RelationID("points")
	held = []hin.Edge{{From: s0, To: t1, Rel: rel, Weight: 1}}

	theta = make([][]float64, net.NumObjects())
	set := func(id string, row []float64) {
		v, _ := net.IndexOf(id)
		theta[v] = row
	}
	set("s0", []float64{0.9, 0.1})
	set("s1", []float64{0.9, 0.1})
	set("s2", []float64{0.1, 0.9})
	set("s3", []float64{0.1, 0.9})
	set("t0", []float64{0.85, 0.15})
	set("t1", []float64{0.88, 0.12})
	set("t2", []float64{0.12, 0.88})
	set("t3", []float64{0.15, 0.85})
	return net, held, theta
}

func TestHoldoutMAPPerfect(t *testing.T) {
	train, held, theta := holdoutFixture(t)
	// Candidates for s0: {t1, t2, t3} (t0 is a training positive and is
	// excluded). t1 is most similar → AP = 1.
	for _, sim := range Similarities() {
		got, err := LinkPredictionMAPHoldout(train, theta, "points", held, sim)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: holdout MAP = %v, want 1", sim.Name, got)
		}
	}
}

func TestHoldoutMAPWrongMembership(t *testing.T) {
	train, held, theta := holdoutFixture(t)
	// Flip s0's membership: t1 now ranks behind t2 and t3 → AP = 1/3.
	s0, _ := train.IndexOf("s0")
	theta[s0] = []float64{0.1, 0.9}
	got, err := LinkPredictionMAPHoldout(train, theta, "points", held, Similarities()[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("holdout MAP = %v, want 1/3", got)
	}
}

func TestHoldoutMAPErrors(t *testing.T) {
	train, held, theta := holdoutFixture(t)
	if _, err := LinkPredictionMAPHoldout(train, theta, "ghost", held, Similarities()[0]); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := LinkPredictionMAPHoldout(train, theta[:2], "points", held, Similarities()[0]); err == nil {
		t.Error("short theta should error")
	}
	if _, err := LinkPredictionMAPHoldout(train, theta, "points", nil, Similarities()[0]); err == nil {
		t.Error("empty holdout should error")
	}
}
