// Package replica implements the pull-by-digest model sync loop behind
// genclusd's -replica-of mode: a Syncer periodically lists a primary's
// /v1/models registry, downloads every model whose snapshot digest the
// local registry does not already hold via /v1/models/{id}/export, verifies
// the bytes hash to the digest the primary advertised (the snapshot codec's
// CRC check runs again at install time), and removes local models the
// primary dropped.
//
// The protocol is deliberately dumb: the registry listing is the entire
// source of truth, every pass reconciles the full id → digest map, and a
// missed pass costs nothing but lag. Digests make the sync idempotent and
// cheap — an unchanged model is never re-downloaded, and a replica
// restarted on its data dir resumes from whatever it had persisted.
//
// The Syncer owns no models itself; it drives a Registry implementation
// (the server's model registry, or a fake in tests). Failures back off
// exponentially and are surfaced via Status for /healthz, /metrics and
// GET /v1/replication.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"genclus/internal/snapshot"
	"genclus/internal/trace"
)

// Registry is the local model store a Syncer reconciles against the
// primary's listing. Implementations must be safe for concurrent use with
// whatever else reads them (the Syncer calls from its own goroutine).
type Registry interface {
	// LocalModels returns the current id → snapshot-digest map.
	LocalModels() map[string]string
	// Install registers verified snapshot bytes under the given id,
	// replacing any previous snapshot held under that id.
	Install(id string, data []byte) error
	// Remove deletes the model under id; removing an absent id is a no-op.
	Remove(id string) error
}

// Config configures a Syncer. Primary and Registry are required; zero
// fields take the documented defaults.
type Config struct {
	// Primary is the primary's base URL (e.g. "http://primary:8080").
	Primary string
	// Registry is the local model registry to reconcile.
	Registry Registry
	// Interval is the pause between successful sync passes (default 2s).
	Interval time.Duration
	// MaxBackoff caps the exponential backoff between failed passes
	// (default 30s, never below Interval).
	MaxBackoff time.Duration
	// Timeout bounds one whole sync pass — listing plus every export it
	// decides to pull (default 1m).
	Timeout time.Duration
	// MaxSnapshotBytes caps a single export download (default 32 MiB, the
	// daemon's default request-body bound); a primary advertising a bigger
	// snapshot fails the pass rather than ballooning replica memory.
	MaxSnapshotBytes int64
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Logger receives sync progress and failure lines (default
	// slog.Default()).
	Logger *slog.Logger
	// Tracer, when set, records one trace per sync pass and propagates its
	// traceparent on every list/export request, so a replica's pulls join
	// up with the primary's request traces. Nil traces nothing.
	Tracer *trace.Recorder
	// Now is the test clock hook (default time.Now).
	Now func() time.Time
}

// Status is a point-in-time snapshot of the sync loop's state.
type Status struct {
	Primary string // primary base URL
	// Syncs counts completed passes; SyncErrors counts failed ones. A pass
	// fails on any listing/transport/backpressure error and on any
	// per-model verification or install failure within it.
	Syncs      uint64
	SyncErrors uint64
	// ModelsSynced and ModelsDeleted count models installed and removed
	// across all passes (not registry sizes).
	ModelsSynced  uint64
	ModelsDeleted uint64
	// ConsecutiveFailures is the current failure streak driving backoff
	// (0 after a successful pass).
	ConsecutiveFailures int
	LastAttempt         time.Time // when the last pass started
	LastSync            time.Time // when the last successful pass finished
	LastError           string    // message of the last failed pass ("" after success)
	// LagSeconds is the staleness bound: time since the last successful
	// pass (or since the Syncer was created, before the first one).
	LagSeconds float64
}

// Syncer runs the replication loop. Create with New, then Start; Stop
// cancels any in-flight pass and waits for the loop goroutine to exit.
type Syncer struct {
	cfg    Config
	hc     *http.Client
	log    *slog.Logger
	now    func() time.Time
	cancel context.CancelFunc // aborts in-flight requests on Stop
	ctx    context.Context

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}

	mu       sync.Mutex
	created  time.Time
	syncs    uint64
	errs     uint64
	synced   uint64
	deleted  uint64
	failures int
	attempt  time.Time
	success  time.Time
	lastErr  string
}

// New validates the config and builds a stopped Syncer.
func New(cfg Config) (*Syncer, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replica: primary URL required")
	}
	if cfg.Registry == nil {
		return nil, errors.New("replica: registry required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.MaxBackoff < cfg.Interval {
		cfg.MaxBackoff = cfg.Interval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Minute
	}
	if cfg.MaxSnapshotBytes <= 0 {
		cfg.MaxSnapshotBytes = 32 << 20
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Syncer{
		cfg:     cfg,
		hc:      hc,
		log:     log,
		now:     now,
		ctx:     ctx,
		cancel:  cancel,
		stopped: make(chan struct{}),
		created: now(),
	}, nil
}

// Start launches the sync loop: an immediate first pass, then one per
// Interval, stretching into exponential backoff while passes fail.
// Idempotent.
func (s *Syncer) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop aborts any in-flight pass and waits for the loop to exit. A Syncer
// that was never started stops immediately. Idempotent.
func (s *Syncer) Stop() {
	s.stopOnce.Do(func() {
		s.cancel()
		s.startOnce.Do(func() { close(s.stopped) }) // never started: nothing to wait for
	})
	<-s.stopped
}

func (s *Syncer) run() {
	defer close(s.stopped)
	for {
		ctx, cancel := context.WithTimeout(s.ctx, s.cfg.Timeout)
		_ = s.SyncOnce(ctx)
		cancel()
		select {
		case <-s.ctx.Done():
			return
		case <-time.After(s.nextDelay()):
		}
	}
}

// nextDelay returns the pause before the next pass: Interval after
// success, exponential backoff while failing.
func (s *Syncer) nextDelay() time.Duration {
	s.mu.Lock()
	failures := s.failures
	s.mu.Unlock()
	return backoff(s.cfg.Interval, failures, s.cfg.MaxBackoff)
}

// backoff is the delay schedule: base after success (failures == 0), then
// base·2^failures capped at max.
func backoff(base time.Duration, failures int, max time.Duration) time.Duration {
	d := base
	for i := 0; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// SyncOnce runs one reconciliation pass and records its outcome in Status.
// The loop calls it on its own cadence; tests (and operators embedding the
// Syncer) may call it directly.
func (s *Syncer) SyncOnce(ctx context.Context) error {
	s.mu.Lock()
	s.attempt = s.now()
	s.mu.Unlock()

	// One trace per pass; its traceparent rides every outbound request via
	// the context, so the primary's request traces share this trace id.
	span := s.cfg.Tracer.StartTrace("replica.sync_pass", trace.SpanContext{}, s.now())
	span.SetAttr("primary", s.cfg.Primary)
	ctx = withTraceparent(ctx, span.Context().Traceparent())
	installed, removed, err := s.pass(ctx)
	span.SetAttr("models_synced", installed)
	span.SetAttr("models_deleted", removed)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End(s.now())

	s.mu.Lock()
	s.synced += uint64(installed)
	s.deleted += uint64(removed)
	if err != nil {
		s.errs++
		s.failures++
		s.lastErr = err.Error()
	} else {
		s.syncs++
		s.failures = 0
		s.lastErr = ""
		s.success = s.now()
	}
	failures := s.failures
	s.mu.Unlock()

	if err != nil {
		s.log.LogAttrs(ctx, slog.LevelWarn, "replica sync failed",
			slog.String("primary", s.cfg.Primary),
			slog.Int("consecutive_failures", failures),
			slog.String("error", err.Error()),
		)
	} else if installed > 0 || removed > 0 {
		s.log.LogAttrs(ctx, slog.LevelInfo, "replica sync applied",
			slog.String("primary", s.cfg.Primary),
			slog.Int("models_synced", installed),
			slog.Int("models_deleted", removed),
		)
	}
	return err
}

// pass is one reconciliation: list, pull what differs, delete what the
// primary dropped. A listing or transport/backpressure failure aborts the
// pass before any install (no partial state from a sick primary, and no
// hammering one that answered 429/503); a per-model digest mismatch or
// install failure skips that model but lets the rest of the pass proceed.
// Deletes run only off a successfully-fetched listing, so an unreachable
// primary can never mass-delete a replica's registry.
func (s *Syncer) pass(ctx context.Context) (installed, removed int, err error) {
	listed, err := s.listPrimary(ctx)
	if err != nil {
		return 0, 0, err
	}
	local := s.cfg.Registry.LocalModels()
	var modelErrs []error
	for _, m := range listed {
		if local[m.ID] == m.Digest {
			continue
		}
		data, err := s.export(ctx, m.ID)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) && he.status == http.StatusNotFound {
				continue // deleted between listing and export; next pass reconciles
			}
			return installed, 0, err
		}
		if got := snapshot.DataDigest(data); got != m.Digest {
			modelErrs = append(modelErrs, fmt.Errorf("model %s: export digest %s does not match listed %s", m.ID, got, m.Digest))
			continue
		}
		if err := s.cfg.Registry.Install(m.ID, data); err != nil {
			modelErrs = append(modelErrs, fmt.Errorf("install model %s: %w", m.ID, err))
			continue
		}
		installed++
	}
	keep := make(map[string]bool, len(listed))
	for _, m := range listed {
		keep[m.ID] = true
	}
	for id := range local {
		if keep[id] {
			continue
		}
		if err := s.cfg.Registry.Remove(id); err != nil {
			modelErrs = append(modelErrs, fmt.Errorf("remove model %s: %w", id, err))
			continue
		}
		removed++
	}
	return installed, removed, errors.Join(modelErrs...)
}

// listedModel is the slice of the primary's /v1/models row the sync needs.
type listedModel struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
}

// httpError is a non-2xx primary response, kept typed so the pass can tell
// "model vanished" (404) from backpressure and faults.
type httpError struct {
	op     string
	status int
}

func (e *httpError) Error() string {
	return fmt.Sprintf("replica: %s: primary answered %d", e.op, e.status)
}

// traceparentKey carries the sync pass's traceparent header value through
// the context to every outbound request the pass makes.
type traceparentKey struct{}

// withTraceparent stores a non-empty traceparent on the context.
func withTraceparent(ctx context.Context, tp string) context.Context {
	if tp == "" {
		return ctx
	}
	return context.WithValue(ctx, traceparentKey{}, tp)
}

// injectTraceparent sets the pass's traceparent header, if any, on an
// outbound request.
func injectTraceparent(req *http.Request) {
	if tp, ok := req.Context().Value(traceparentKey{}).(string); ok {
		req.Header.Set("traceparent", tp)
	}
}

// listPrimary fetches the primary's model registry listing.
func (s *Syncer) listPrimary(ctx context.Context) ([]listedModel, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.Primary+"/v1/models", nil)
	if err != nil {
		return nil, fmt.Errorf("replica: build list request: %w", err)
	}
	injectTraceparent(req)
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: list models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, &httpError{op: "list models", status: resp.StatusCode}
	}
	var out struct {
		Models []listedModel `json:"models"`
	}
	// The listing is rows of metadata; even a maxed-out registry is far
	// below the snapshot cap.
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxSnapshotBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("replica: decode model listing: %w", err)
	}
	return out.Models, nil
}

// export downloads one model's snapshot bytes, capped at MaxSnapshotBytes.
func (s *Syncer) export(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.Primary+"/v1/models/"+id+"/export", nil)
	if err != nil {
		return nil, fmt.Errorf("replica: build export request: %w", err)
	}
	injectTraceparent(req)
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: export model %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, &httpError{op: "export model " + id, status: resp.StatusCode}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxSnapshotBytes+1))
	if err != nil {
		return nil, fmt.Errorf("replica: read export of model %s: %w", id, err)
	}
	if int64(len(data)) > s.cfg.MaxSnapshotBytes {
		return nil, fmt.Errorf("replica: export of model %s exceeds %d bytes", id, s.cfg.MaxSnapshotBytes)
	}
	return data, nil
}

// Status returns the loop's current counters and staleness.
func (s *Syncer) Status() Status {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Primary:             s.cfg.Primary,
		Syncs:               s.syncs,
		SyncErrors:          s.errs,
		ModelsSynced:        s.synced,
		ModelsDeleted:       s.deleted,
		ConsecutiveFailures: s.failures,
		LastAttempt:         s.attempt,
		LastSync:            s.success,
		LastError:           s.lastErr,
	}
	since := s.created
	if !s.success.IsZero() {
		since = s.success
	}
	if lag := now.Sub(since).Seconds(); lag > 0 {
		st.LagSeconds = lag
	}
	return st
}
