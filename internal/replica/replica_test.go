package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"genclus/internal/snapshot"
)

// fakePrimary is a scriptable /v1/models + /v1/models/{id}/export server.
// Models maps id → snapshot bytes; the listing advertises each model's real
// DataDigest unless corruptExport makes the export body differ from it.
type fakePrimary struct {
	mu            sync.Mutex
	models        map[string][]byte
	corruptExport bool // serve flipped bytes so the digest check fails
	failStatus    int  // non-zero: answer exports with this status
	failRemaining int  // how many export requests failStatus applies to (-1 = all)
	listStatus    int  // non-zero: answer listings with this status
	exportHits    map[string]int

	srv *httptest.Server
}

func newFakePrimary(t *testing.T) *fakePrimary {
	t.Helper()
	p := &fakePrimary{
		models:     map[string][]byte{},
		exportHits: map[string]int{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", p.handleList)
	mux.HandleFunc("GET /v1/models/{id}/export", p.handleExport)
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePrimary) handleList(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.listStatus != 0 {
		w.WriteHeader(p.listStatus)
		return
	}
	var rows []listedModel
	for id, data := range p.models {
		rows = append(rows, listedModel{ID: id, Digest: snapshot.DataDigest(data)})
	}
	json.NewEncoder(w).Encode(map[string]any{"models": rows})
}

func (p *fakePrimary) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exportHits[id]++
	if p.failStatus != 0 && p.failRemaining != 0 {
		if p.failRemaining > 0 {
			p.failRemaining--
		}
		w.WriteHeader(p.failStatus)
		return
	}
	data, ok := p.models[id]
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		return
	}
	if p.corruptExport {
		data = append([]byte{}, data...)
		data[0] ^= 0xff
	}
	w.Write(data)
}

func (p *fakePrimary) set(id string, data []byte) {
	p.mu.Lock()
	p.models[id] = data
	p.mu.Unlock()
}

func (p *fakePrimary) drop(id string) {
	p.mu.Lock()
	delete(p.models, id)
	p.mu.Unlock()
}

func (p *fakePrimary) hits(id string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exportHits[id]
}

// fakeRegistry is a map-backed Registry recording every mutation.
type fakeRegistry struct {
	mu          sync.Mutex
	data        map[string][]byte
	failInstall error // non-nil: Install returns it
	installs    int
	removes     int
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{data: map[string][]byte{}}
}

func (r *fakeRegistry) LocalModels() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.data))
	for id, data := range r.data {
		out[id] = snapshot.DataDigest(data)
	}
	return out
}

func (r *fakeRegistry) Install(id string, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failInstall != nil {
		return r.failInstall
	}
	r.data[id] = data
	r.installs++
	return nil
}

func (r *fakeRegistry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.data, id)
	r.removes++
	return nil
}

func (r *fakeRegistry) get(id string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok := r.data[id]
	return data, ok
}

func (r *fakeRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}

func testSyncer(t *testing.T, primary string, reg Registry) *Syncer {
	t.Helper()
	s, err := New(Config{
		Primary:  primary,
		Registry: reg,
		Logger:   slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Stop)
	return s
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Registry: newFakeRegistry()}); err == nil {
		t.Fatal("New without Primary: want error")
	}
	if _, err := New(Config{Primary: "http://x"}); err == nil {
		t.Fatal("New without Registry: want error")
	}
}

func TestSyncInstallAndDelete(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("snapshot-bytes-a"))
	p.set("m-b", []byte("snapshot-bytes-b"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if got, ok := reg.get("m-a"); !ok || string(got) != "snapshot-bytes-a" {
		t.Fatalf("m-a after sync: %q, %v", got, ok)
	}
	if _, ok := reg.get("m-b"); !ok {
		t.Fatal("m-b missing after sync")
	}
	st := s.Status()
	if st.Syncs != 1 || st.SyncErrors != 0 || st.ModelsSynced != 2 || st.ModelsDeleted != 0 {
		t.Fatalf("status after first pass: %+v", st)
	}

	// The primary drops one model and gains another; the next pass
	// reconciles both directions.
	p.drop("m-b")
	p.set("m-c", []byte("snapshot-bytes-c"))
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if _, ok := reg.get("m-b"); ok {
		t.Fatal("m-b still present after primary dropped it")
	}
	if _, ok := reg.get("m-c"); !ok {
		t.Fatal("m-c missing after sync")
	}
	st = s.Status()
	if st.Syncs != 2 || st.ModelsSynced != 3 || st.ModelsDeleted != 1 {
		t.Fatalf("status after second pass: %+v", st)
	}
}

func TestSyncSkipsUnchangedDigests(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("stable-bytes"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	for i := 0; i < 3; i++ {
		if err := s.SyncOnce(context.Background()); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	if hits := p.hits("m-a"); hits != 1 {
		t.Fatalf("export hits for unchanged model: %d, want 1", hits)
	}

	// A changed digest re-downloads exactly once more.
	p.set("m-a", []byte("updated-bytes"))
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("pass after update: %v", err)
	}
	if got, _ := reg.get("m-a"); string(got) != "updated-bytes" {
		t.Fatalf("m-a after update: %q", got)
	}
	if hits := p.hits("m-a"); hits != 2 {
		t.Fatalf("export hits after update: %d, want 2", hits)
	}
}

func TestSyncRejectsDigestMismatch(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("true-bytes"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	p.mu.Lock()
	p.corruptExport = true
	p.mu.Unlock()
	err := s.SyncOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("corrupted export: err = %v, want digest mismatch", err)
	}
	if _, ok := reg.get("m-a"); ok {
		t.Fatal("corrupted snapshot was installed")
	}
	st := s.Status()
	if st.SyncErrors != 1 || st.ConsecutiveFailures != 1 || st.LastError == "" {
		t.Fatalf("status after mismatch: %+v", st)
	}

	// Once the body is honest again the retry succeeds and the failure
	// streak resets.
	p.mu.Lock()
	p.corruptExport = false
	p.mu.Unlock()
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("retry pass: %v", err)
	}
	if got, _ := reg.get("m-a"); string(got) != "true-bytes" {
		t.Fatalf("m-a after retry: %q", got)
	}
	st = s.Status()
	if st.ConsecutiveFailures != 0 || st.LastError != "" || st.Syncs != 1 {
		t.Fatalf("status after recovery: %+v", st)
	}
}

func TestSyncBackpressureAbortsPass(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("bytes-a"))
	p.set("m-b", []byte("bytes-b"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	// Every export answers 503: the pass must abort on the first one and
	// install nothing — a sick primary gets backoff, not a hammering.
	p.mu.Lock()
	p.failStatus = http.StatusServiceUnavailable
	p.failRemaining = -1
	p.mu.Unlock()
	err := s.SyncOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("503 exports: err = %v, want 503", err)
	}
	if reg.size() != 0 {
		t.Fatalf("partial install under backpressure: %d models", reg.size())
	}
	totalHits := p.hits("m-a") + p.hits("m-b")
	if totalHits != 1 {
		t.Fatalf("export attempts under backpressure: %d, want 1 (abort after first)", totalHits)
	}

	// A second failing pass deepens the streak, and with it the backoff.
	if err := s.SyncOnce(context.Background()); err == nil {
		t.Fatal("second 503 pass: want error")
	}
	if st := s.Status(); st.ConsecutiveFailures != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", st.ConsecutiveFailures)
	}
	if d1, d2 := backoff(s.cfg.Interval, 1, s.cfg.MaxBackoff), s.nextDelay(); d2 <= d1 {
		t.Fatalf("backoff did not grow: %v then %v", d1, d2)
	}

	// Recovery installs both models in one pass.
	p.mu.Lock()
	p.failStatus = 0
	p.mu.Unlock()
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("recovery pass: %v", err)
	}
	if reg.size() != 2 {
		t.Fatalf("models after recovery: %d, want 2", reg.size())
	}
}

func TestSync429AbortsPass(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("bytes-a"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	p.mu.Lock()
	p.listStatus = http.StatusTooManyRequests
	p.mu.Unlock()
	err := s.SyncOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("429 listing: err = %v, want 429", err)
	}
	if reg.size() != 0 || p.hits("m-a") != 0 {
		t.Fatal("pass proceeded past a 429 listing")
	}
}

func TestSyncExportNotFoundSkipsModel(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("bytes-a"))
	p.set("m-b", []byte("bytes-b"))
	reg := newFakeRegistry()
	s := testSyncer(t, p.srv.URL, reg)

	// m-a vanishes between the listing and its export (404): the pass skips
	// it without failing — the next listing simply won't include it.
	p.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/models/m-a/export" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/models", p.handleList)
		mux.HandleFunc("GET /v1/models/{id}/export", p.handleExport)
		mux.ServeHTTP(w, r)
	})
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("pass with vanished model: %v", err)
	}
	if _, ok := reg.get("m-a"); ok {
		t.Fatal("vanished model installed")
	}
	if _, ok := reg.get("m-b"); !ok {
		t.Fatal("m-b missing: 404 on a sibling aborted the pass")
	}
}

func TestSyncUnreachablePrimaryKeepsLocalModels(t *testing.T) {
	// Reserve a port, then close it so dials are refused deterministically.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	reg := newFakeRegistry()
	reg.Install("m-a", []byte("precious-local-state"))
	s := testSyncer(t, dead, reg)

	if err := s.SyncOnce(context.Background()); err == nil {
		t.Fatal("unreachable primary: want error")
	}
	// The unreachable primary must never look like "primary has zero
	// models": local state survives.
	if _, ok := reg.get("m-a"); !ok {
		t.Fatal("local model deleted while primary was unreachable")
	}
	if st := s.Status(); st.SyncErrors != 1 || st.ModelsDeleted != 0 {
		t.Fatalf("status after unreachable pass: %+v", st)
	}
}

func TestSyncInstallFailureSkipsModelButContinues(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("bytes-a"))
	reg := newFakeRegistry()
	reg.failInstall = fmt.Errorf("disk full")
	s := testSyncer(t, p.srv.URL, reg)

	err := s.SyncOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("install failure: err = %v", err)
	}
	reg.mu.Lock()
	reg.failInstall = nil
	reg.mu.Unlock()
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("pass after install recovers: %v", err)
	}
	if _, ok := reg.get("m-a"); !ok {
		t.Fatal("m-a missing after recovery")
	}
}

func TestBackoffSchedule(t *testing.T) {
	base, max := 2*time.Second, 30*time.Second
	for _, tc := range []struct {
		failures int
		want     time.Duration
	}{
		{0, 2 * time.Second},
		{1, 4 * time.Second},
		{2, 8 * time.Second},
		{3, 16 * time.Second},
		{4, 30 * time.Second}, // 32s capped
		{10, 30 * time.Second},
	} {
		if got := backoff(base, tc.failures, max); got != tc.want {
			t.Errorf("backoff(%v, %d, %v) = %v, want %v", base, tc.failures, max, got, tc.want)
		}
	}
}

func TestStartStop(t *testing.T) {
	p := newFakePrimary(t)
	p.set("m-a", []byte("bytes-a"))
	reg := newFakeRegistry()
	s, err := New(Config{
		Primary:  p.srv.URL,
		Registry: reg,
		Interval: 10 * time.Millisecond,
		Logger:   slog.New(slog.NewTextHandler(testWriter{t}, nil)),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := reg.get("m-a"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loop never synced m-a")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
}

func TestStopWithoutStart(t *testing.T) {
	s, err := New(Config{Primary: "http://unused", Registry: newFakeRegistry()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop on a never-started Syncer hung")
	}
}

func TestStatusLag(t *testing.T) {
	clock := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	p := newFakePrimary(t)
	reg := newFakeRegistry()
	s, err := New(Config{Primary: p.srv.URL, Registry: reg, Now: now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	clock = clock.Add(7 * time.Second)
	if lag := s.Status().LagSeconds; lag != 7 {
		t.Fatalf("pre-sync lag = %v, want 7 (since creation)", lag)
	}
	if err := s.SyncOnce(context.Background()); err != nil {
		t.Fatalf("pass: %v", err)
	}
	clock = clock.Add(3 * time.Second)
	if lag := s.Status().LagSeconds; lag != 3 {
		t.Fatalf("post-sync lag = %v, want 3 (since success)", lag)
	}
}
