// Benchmarks: one testing.B entry per table and figure of the paper's
// evaluation section (plus the ablations). Each benchmark drives the same
// experiment code cmd/experiments runs, at a reduced scale so the whole
// suite completes quickly; run `cmd/experiments -run <id>` for the
// full-scale numbers recorded in EXPERIMENTS.md.
package genclus_test

import (
	"testing"

	"genclus"
	"genclus/internal/bench"
)

// benchConfig keeps benchmark iterations fast while preserving every code
// path of the full-scale experiments.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.06, Runs: 2, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5AC(b *testing.B)              { runExperiment(b, "fig5") }
func BenchmarkFig6ACP(b *testing.B)             { runExperiment(b, "fig6") }
func BenchmarkTable1CaseStudy(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkFig7WeatherSetting1(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8WeatherSetting2(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkTable2LinkPredAC(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3LinkPredACP(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkTable4LinkPredWeather(b *testing.B) {
	runExperiment(b, "table4")
}
func BenchmarkFig9Strengths(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkTable5WeatherStrengths(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkFig10RunningCase(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11Scalability(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkParallelEM(b *testing.B)             { runExperiment(b, "parallel") }
func BenchmarkAblationAsymmetry(b *testing.B)      { runExperiment(b, "ablation-asym") }
func BenchmarkAblationFixedGamma(b *testing.B)     { runExperiment(b, "ablation-gamma") }
func BenchmarkAblationPrior(b *testing.B)          { runExperiment(b, "ablation-prior") }
func BenchmarkSelectK(b *testing.B)                { runExperiment(b, "selectk") }
func BenchmarkHoldoutLinkPred(b *testing.B)        { runExperiment(b, "ext-holdout") }

// BenchmarkFitWeather measures a full GenClus fit on a mid-size weather
// network — the end-to-end number a library user cares about.
func BenchmarkFitWeather(b *testing.B) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(200, 100, 5, 1))
	if err != nil {
		b.Fatal(err)
	}
	opts := genclus.DefaultOptions(4)
	opts.OuterIters = 3
	opts.EMIters = 5
	opts.InitSeeds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := genclus.Fit(ds.Net, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitBibliographic measures a full fit on a small ACP network.
func BenchmarkFitBibliographic(b *testing.B) {
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaACP, 1)
	cfg.NumAuthors = 120
	cfg.NumPapers = 200
	cfg.LabeledPapers = 20
	ds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := genclus.DefaultOptions(4)
	opts.OuterIters = 3
	opts.EMIters = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := genclus.Fit(ds.Net, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateWeather isolates the Appendix C generator (kd-tree kNN
// construction dominates).
func BenchmarkGenerateWeather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := genclus.GenerateWeather(genclus.WeatherSetting1(500, 250, 5, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkPredictionMAP isolates the §5.2.2 evaluation path.
func BenchmarkLinkPredictionMAP(b *testing.B) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(200, 100, 3, 1))
	if err != nil {
		b.Fatal(err)
	}
	opts := genclus.DefaultOptions(4)
	opts.OuterIters = 2
	opts.EMIters = 3
	opts.InitSeeds = 1
	res, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		b.Fatal(err)
	}
	sim := genclus.Similarities()[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := genclus.LinkPredictionMAP(ds.Net, res.Theta, "<T,P>", sim); err != nil {
			b.Fatal(err)
		}
	}
}
