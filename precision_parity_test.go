package genclus_test

import (
	"bytes"
	"testing"

	"genclus"
)

// fitLabels fits the dataset's network at the given precision and returns
// the hard partition.
func fitLabels(t *testing.T, ds *genclus.Dataset, prec genclus.Precision, seed int64) []int {
	t.Helper()
	opts := genclus.DefaultOptions(ds.NumClusters).WithPrecision(prec)
	opts.Seed = seed
	opts.OuterIters = 4
	opts.EMIters = 8
	res, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return genclus.HardLabels(res.Theta)
}

// TestEncodeModelPreservesPrecision pins the public-API serialization path
// the CLI's -save-model rides: a model fitted under PrecisionFloat32 must
// encode in the float32 wire layout (FlagFloat32 set, smaller payload) and
// decode back as a float32 model that re-encodes byte-identically, without
// the caller re-stating the precision anywhere. This regressed once —
// genclus.EncodeModel built the snapshot without consulting the fit's
// precision, silently re-widening float32 CLI fits to the float64 layout.
func TestEncodeModelPreservesPrecision(t *testing.T) {
	ds, err := genclus.GenerateWeather(genclus.WeatherSetting1(30, 20, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	opts := genclus.DefaultOptions(ds.NumClusters).WithPrecision(genclus.PrecisionFloat32)
	opts.Seed = 3
	opts.OuterIters = 2
	opts.EMIters = 5
	m32, err := genclus.Fit(ds.Net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m32.Precision != genclus.PrecisionFloat32 {
		t.Fatalf("float32 fit reports Precision %q", m32.Precision)
	}
	enc32, err := genclus.EncodeModel(m32)
	if err != nil {
		t.Fatal(err)
	}
	// Byte 6 is the low half of the little-endian flags word.
	if enc32[6]&0x1 == 0 {
		t.Fatal("float32 fit encoded without FlagFloat32")
	}

	m64, err := genclus.Fit(ds.Net, genclus.DefaultOptions(ds.NumClusters))
	if err != nil {
		t.Fatal(err)
	}
	enc64, err := genclus.EncodeModel(m64)
	if err != nil {
		t.Fatal(err)
	}
	if enc64[6]&0x1 != 0 {
		t.Fatal("float64 fit encoded with FlagFloat32 set")
	}
	if len(enc32) >= len(enc64) {
		t.Errorf("float32 snapshot is %d bytes, float64 is %d — expected smaller", len(enc32), len(enc64))
	}

	dec, err := genclus.DecodeModel(enc32)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Precision != genclus.PrecisionFloat32 {
		t.Fatalf("decoded model reports Precision %q, want float32", dec.Precision)
	}
	re, err := genclus.EncodeModel(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc32) {
		t.Error("decode→encode of a float32 snapshot is not byte-identical")
	}
}

// TestFloat32NMIParity pins the documented accuracy contract of the float32
// storage mode (docs/ARCHITECTURE.md, "Numerics"): on the synthetic
// evaluation suites, the partition a float32 fit produces must agree with
// the float64 partition of the same configuration at NMI ≥ 0.99. Arithmetic
// runs in float64 either way — the modes differ only in rounding committed
// parameters — so clusterings should diverge on at most a handful of
// genuinely ambiguous boundary objects.
func TestFloat32NMIParity(t *testing.T) {
	suites := []struct {
		name string
		gen  func() (*genclus.Dataset, error)
	}{
		{"weather-setting1", func() (*genclus.Dataset, error) {
			return genclus.GenerateWeather(genclus.WeatherSetting1(60, 40, 3, 9))
		}},
		{"biblio-AC", func() (*genclus.Dataset, error) {
			cfg := genclus.DefaultBiblioConfig(genclus.SchemaAC, 11)
			cfg.NumAuthors = 240
			cfg.NumPapers = 360
			cfg.NumConfs = 12
			return genclus.GenerateBibliographic(cfg)
		}},
	}
	for _, suite := range suites {
		t.Run(suite.name, func(t *testing.T) {
			ds, err := suite.gen()
			if err != nil {
				t.Fatal(err)
			}
			l64 := fitLabels(t, ds, genclus.PrecisionFloat64, 4)
			l32 := fitLabels(t, ds, genclus.PrecisionFloat32, 4)
			nmi, err := genclus.NMI(l32, l64)
			if err != nil {
				t.Fatal(err)
			}
			if nmi < 0.99 {
				t.Errorf("float32 vs float64 NMI = %v on %s, want ≥ 0.99", nmi, ds.Name)
			}
		})
	}
}
