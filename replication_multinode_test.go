package genclus_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genclus/client"
	"genclus/internal/testutil"
)

// replicaArgs are the flags that make a daemon follow the given primary
// with a test-fast sync cadence.
func replicaArgs(primaryURL string) []string {
	return []string{"-replica-of", primaryURL, "-sync-interval", "100ms"}
}

// waitConverged polls a node's registry until its id → digest map equals
// want exactly.
func waitConverged(t *testing.T, c *client.Client, name string, want map[string]string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for {
		models, err := c.ListModels(ctx)
		if err == nil && len(models) == len(want) {
			match := true
			for _, m := range models {
				if want[m.ID] != m.Digest {
					match = false
					break
				}
			}
			if match {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never converged to %v (last: %v, err %v)", name, want, models, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// fitModel fits the standard two-topic network on the primary and returns
// the model's id and digest.
func fitModel(t *testing.T, c *client.Client, seed int64) (id, digest string) {
	t.Helper()
	ctx := context.Background()
	info, err := c.UploadNetwork(ctx, recoveryNetwork(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	outer, em, seeds := 3, 5, 2
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: &outer, EMIters: &em, InitSeeds: &seeds, Seed: &seed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	models, err := c.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if m.ID == status.ModelID {
			return m.ID, m.Digest
		}
	}
	t.Fatalf("fitted model %s missing from listing", status.ModelID)
	return "", ""
}

// assignBody is a fixed fold-in request against the recoveryNetwork
// vocabulary, used for the bitwise cross-node comparison.
func assignBody(t *testing.T) []byte {
	t.Helper()
	req := client.AssignRequest{
		TopK: 2,
		Objects: []client.AssignObject{
			{
				ID:    "q-linked",
				Links: []client.AssignLink{{Relation: "cites", To: "doc0_000", Weight: 1}},
				Terms: map[string][]client.AssignTermCount{"text": {{Term: 2, Count: 3}, {Term: 5, Count: 1}}},
			},
			{
				ID:    "q-texty",
				Terms: map[string][]client.AssignTermCount{"text": {{Term: 12, Count: 4}}},
			},
		},
	}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// rawAssign posts an assign body over plain HTTP so responses can be
// compared byte for byte across nodes.
func rawAssign(t *testing.T, baseURL, modelID string, payload []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/models/"+modelID+"/assign", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("assign on %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReplicaTierMultiNode is the acceptance suite for the replica tier:
// one primary and two replicas (one durable, one memory-only) as real
// genclusd subprocesses. It drives convergence, role reporting, the
// read-only fence, bitwise-identical assigns across all three nodes,
// primary SIGKILL + recovery, delete propagation, and a sustained
// MultiEndpoint assign load that must see zero failed requests while one
// replica is killed and restarted under it.
func TestReplicaTierMultiNode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	baseline := runtime.NumGoroutine()

	primary := testutil.StartDaemon(t, testutil.Options{
		Name:    "primary",
		DataDir: filepath.Join(t.TempDir(), "primary"),
	})
	rep1 := testutil.StartDaemon(t, testutil.Options{
		Name:    "replica1",
		DataDir: filepath.Join(t.TempDir(), "replica1"),
		Args:    replicaArgs(primary.URL()),
	})
	rep2 := testutil.StartDaemon(t, testutil.Options{
		Name: "replica2", // memory-only: resyncs from scratch after restart
		Args: replicaArgs(primary.URL()),
	})
	pc := client.New(primary.URL())
	rc1 := client.New(rep1.URL())
	rc2 := client.New(rep2.URL())

	// Roles are visible on GET /v1/replication.
	for _, tc := range []struct {
		c    *client.Client
		mode string
	}{{pc, "primary"}, {rc1, "replica"}, {rc2, "replica"}} {
		rs, err := tc.c.Replication(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Mode != tc.mode {
			t.Fatalf("mode %q, want %q", rs.Mode, tc.mode)
		}
		if (rs.Sync.Active) != (tc.mode == "replica") {
			t.Fatalf("%s node reports sync.active=%v", tc.mode, rs.Sync.Active)
		}
	}

	// A model fitted on the primary converges onto both replicas.
	modelA, digestA := fitModel(t, pc, 11)
	wantA := map[string]string{modelA: digestA}
	waitConverged(t, rc1, "replica1", wantA)
	waitConverged(t, rc2, "replica2", wantA)

	// The write fence: fits and mutations on a replica answer the typed
	// read-only error, and nothing changed its registry.
	if _, err := rc1.UploadNetwork(ctx, recoveryNetwork(t, 4)); !errors.Is(err, client.ErrReadOnlyReplica) {
		t.Fatalf("replica upload: %v, want ErrReadOnlyReplica", err)
	}
	if err := rc2.DeleteModel(ctx, modelA); !errors.Is(err, client.ErrReadOnlyReplica) {
		t.Fatalf("replica delete: %v, want ErrReadOnlyReplica", err)
	}
	waitConverged(t, rc2, "replica2", wantA)

	// The same assign request answers bitwise-identically on all three
	// nodes — the replicas serve the primary's exact model bytes.
	payload := assignBody(t)
	codeP, bodyP := rawAssign(t, primary.URL(), modelA, payload)
	if codeP != http.StatusOK {
		t.Fatalf("primary assign: %d: %s", codeP, bodyP)
	}
	for name, url := range map[string]string{"replica1": rep1.URL(), "replica2": rep2.URL()} {
		code, body := rawAssign(t, url, modelA, payload)
		if code != http.StatusOK {
			t.Fatalf("%s assign: %d: %s", name, code, body)
		}
		if !bytes.Equal(body, bodyP) {
			t.Fatalf("%s assign response differs from primary:\n%s\nvs\n%s", name, body, bodyP)
		}
	}

	// SIGKILL the primary: replicas keep serving assigns from their synced
	// registries and report the outage in their sync state.
	primary.Kill()
	for name, url := range map[string]string{"replica1": rep1.URL(), "replica2": rep2.URL()} {
		if code, body := rawAssign(t, url, modelA, payload); code != http.StatusOK {
			t.Fatalf("%s assign during primary outage: %d: %s", name, code, body)
		}
	}
	testutilWaitFor(t, 30*time.Second, "replica1 sync errors", func() bool {
		rs, err := rc1.Replication(ctx)
		return err == nil && rs.Sync.SyncErrors > 0 && rs.Sync.ConsecutiveFailures > 0
	})

	// The primary restarts on its data dir; a fresh fit converges onto the
	// replicas alongside the recovered model.
	primary.Restart()
	modelB, digestB := fitModel(t, pc, 23)
	wantAB := map[string]string{modelA: digestA, modelB: digestB}
	waitConverged(t, rc1, "replica1", wantAB)
	waitConverged(t, rc2, "replica2", wantAB)

	// Delete propagation: dropping modelA on the primary drops it tier-wide.
	if err := pc.DeleteModel(ctx, modelA); err != nil {
		t.Fatal(err)
	}
	wantB := map[string]string{modelB: digestB}
	waitConverged(t, rc1, "replica1", wantB)
	waitConverged(t, rc2, "replica2", wantB)

	// Sustained MultiEndpoint load with a replica killed and restarted
	// under it: every request must succeed — failover and the primary
	// fallback absorb the outage.
	me := client.NewMultiEndpoint(primary.URL(), []string{rep1.URL(), rep2.URL()},
		client.WithQuarantine(100*time.Millisecond, time.Second))
	assignReq := client.AssignRequest{
		TopK:    2,
		Objects: []client.AssignObject{{ID: "q", Links: []client.AssignLink{{Relation: "cites", To: "doc0_000", Weight: 1}}}},
	}
	var (
		wg       sync.WaitGroup
		failed   atomic.Int64
		requests atomic.Int64
		firstErr atomic.Value
		stop     = make(chan struct{})
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := me.AssignObjects(ctx, modelB, assignReq); err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("%v", err))
				}
				requests.Add(1)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond) // load against the full tier
	rep1.Kill()
	time.Sleep(500 * time.Millisecond) // load with one replica down
	rep1.Restart()
	time.Sleep(300 * time.Millisecond) // load through recovery
	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d SDK requests failed during replica outage (first: %v)\nreplica1 logs:\n%s",
			n, requests.Load(), firstErr.Load(), rep1.Logs())
	}
	if requests.Load() == 0 {
		t.Fatal("load loop issued no requests")
	}
	// The restarted memoryless replica is irrelevant here, but the durable
	// one must converge again after its crash.
	waitConverged(t, rc1, "replica1 after restart", wantB)

	// No goroutine leak from the SDK load loop or the harness.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(30 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after multi-node load: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// testutilWaitFor polls cond until it holds or the timeout fails the test.
func testutilWaitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
