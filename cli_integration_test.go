package genclus_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the three command-line tools and runs the full
// workflow: generate a dataset, cluster it, and sanity-check the result
// JSON. Skipped when the Go toolchain cannot build (e.g. vendored test
// environments without a compiler).
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	datagenBin := build("datagen", "./cmd/datagen")
	genclusBin := build("genclus", "./cmd/genclus")
	experimentsBin := build("experiments", "./cmd/experiments")

	netPath := filepath.Join(dir, "net.json")
	labelsPath := filepath.Join(dir, "labels.json")
	run := func(bin string, args ...string) []byte {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
		}
		return out
	}

	// 1. Generate a small weather dataset.
	run(datagenBin, "-kind", "weather", "-numT", "60", "-numP", "30", "-nobs", "3",
		"-out", netPath, "-labels", labelsPath)
	if _, err := os.Stat(netPath); err != nil {
		t.Fatal("datagen produced no network file")
	}
	var labelDoc struct {
		K      int            `json:"k"`
		Labels map[string]int `json:"labels"`
	}
	labelData, err := os.ReadFile(labelsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(labelData, &labelDoc); err != nil {
		t.Fatal(err)
	}
	if labelDoc.K != 4 || len(labelDoc.Labels) != 90 {
		t.Fatalf("labels doc wrong: K=%d n=%d", labelDoc.K, len(labelDoc.Labels))
	}

	// 2. Cluster it.
	resultPath := filepath.Join(dir, "result.json")
	run(genclusBin, "-in", netPath, "-k", "4", "-outer", "3", "-em", "4",
		"-out", resultPath, "-history")
	var result struct {
		K       int `json:"k"`
		Objects []struct {
			ID      string    `json:"id"`
			Theta   []float64 `json:"theta"`
			Cluster int       `json:"cluster"`
		} `json:"objects"`
		Gamma      map[string]float64 `json:"gamma"`
		Iterations []struct {
			Iter int `json:"iter"`
		} `json:"iterations"`
	}
	resultData, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resultData, &result); err != nil {
		t.Fatal(err)
	}
	if result.K != 4 || len(result.Objects) != 90 {
		t.Fatalf("result shape wrong: K=%d objects=%d", result.K, len(result.Objects))
	}
	if len(result.Gamma) != 4 {
		t.Fatalf("expected 4 relations, got %v", result.Gamma)
	}
	if len(result.Iterations) != 4 { // iter 0..3
		t.Fatalf("expected 4 history entries, got %d", len(result.Iterations))
	}
	for _, obj := range result.Objects {
		if len(obj.Theta) != 4 || obj.Cluster < 0 || obj.Cluster > 3 {
			t.Fatalf("object %s malformed: %+v", obj.ID, obj)
		}
	}

	// 2b. Persist the fitted model and warm-start a second run from it:
	// the snapshot round-trips through the CLI and the refit does less EM
	// work than the cold fit (the warm-start contract).
	modelPath := filepath.Join(dir, "model.gcsnap")
	refitPath := filepath.Join(dir, "refit.json")
	run(genclusBin, "-in", netPath, "-k", "4", "-outer", "3", "-em", "4",
		"-out", resultPath, "-save-model", modelPath)
	if fi, err := os.Stat(modelPath); err != nil || fi.Size() == 0 {
		t.Fatalf("-save-model produced no snapshot: %v", err)
	}
	run(genclusBin, "-in", netPath, "-from-model", modelPath, "-outer", "3", "-em", "4",
		"-out", refitPath)
	var refit struct {
		K       int `json:"k"`
		Objects []struct {
			ID string `json:"id"`
		} `json:"objects"`
	}
	refitData, err := os.ReadFile(refitPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refitData, &refit); err != nil {
		t.Fatal(err)
	}
	if refit.K != 4 || len(refit.Objects) != 90 {
		t.Fatalf("refit result shape wrong: K=%d objects=%d", refit.K, len(refit.Objects))
	}
	// A -k flag that disagrees with the snapshot must fail.
	if err := exec.Command(genclusBin, "-in", netPath, "-from-model", modelPath, "-k", "7").Run(); err == nil {
		t.Error("genclus with conflicting -k and -from-model should fail")
	}
	// A corrupt snapshot must fail, not panic or fit garbage.
	badModel := filepath.Join(dir, "bad.gcsnap")
	snapData, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	snapData[len(snapData)/2] ^= 0x10
	if err := os.WriteFile(badModel, snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(genclusBin, "-in", netPath, "-from-model", badModel).Run(); err == nil {
		t.Error("genclus with corrupt model snapshot should fail")
	}

	// 2c. Offline scoring: fold new objects into the saved snapshot with
	// -assign — no network, no fit, just the model file and a queries file.
	queriesPath := filepath.Join(dir, "queries.json")
	assignPath := filepath.Join(dir, "assign.json")
	relName := ""
	for name := range result.Gamma {
		relName = name
		break
	}
	queries := map[string]any{
		"top_k": 2,
		"objects": []map[string]any{
			{"id": "newbie", "links": []map[string]any{{"rel": relName, "to": result.Objects[0].ID, "w": 1}}},
			{"id": "empty"},
		},
	}
	queryData, err := json.Marshal(queries)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(queriesPath, queryData, 0o644); err != nil {
		t.Fatal(err)
	}
	run(genclusBin, "-from-model", modelPath, "-assign", queriesPath, "-out", assignPath)
	var assigned struct {
		K           int `json:"k"`
		Assignments []struct {
			ID      string    `json:"id"`
			Cluster int       `json:"cluster"`
			Theta   []float64 `json:"theta"`
			Top     []struct {
				Cluster int     `json:"cluster"`
				P       float64 `json:"p"`
			} `json:"top"`
			FoldInIters int `json:"fold_in_iters"`
		} `json:"assignments"`
	}
	assignData, err := os.ReadFile(assignPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(assignData, &assigned); err != nil {
		t.Fatal(err)
	}
	if assigned.K != 4 || len(assigned.Assignments) != 2 {
		t.Fatalf("assign output shape wrong: K=%d n=%d", assigned.K, len(assigned.Assignments))
	}
	newbie, empty := assigned.Assignments[0], assigned.Assignments[1]
	if newbie.ID != "newbie" || len(newbie.Theta) != 4 || len(newbie.Top) != 2 || newbie.FoldInIters < 1 {
		t.Fatalf("newbie assignment malformed: %+v", newbie)
	}
	if newbie.Top[0].Cluster != newbie.Cluster {
		t.Fatalf("newbie top list %+v disagrees with cluster %d", newbie.Top, newbie.Cluster)
	}
	for _, x := range empty.Theta {
		if x != 0.25 {
			t.Fatalf("information-free object posterior %v, want uniform", empty.Theta)
		}
	}
	// -assign without -from-model fails.
	if err := exec.Command(genclusBin, "-assign", queriesPath).Run(); err == nil {
		t.Error("genclus -assign without -from-model should fail")
	}
	// Fit-only flags conflict with -assign instead of being silently
	// dropped (a -save-model here would never be written).
	if err := exec.Command(genclusBin, "-from-model", modelPath, "-assign", queriesPath,
		"-k", "4", "-save-model", filepath.Join(dir, "never.gcsnap")).Run(); err == nil {
		t.Error("genclus -assign with fit-only flags should fail")
	}
	// An unresolvable query fails cleanly, not with a panic.
	badQueries := filepath.Join(dir, "badq.json")
	if err := os.WriteFile(badQueries, []byte(`{"objects":[{"links":[{"rel":"ghost","to":"nope","w":1}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(genclusBin, "-from-model", modelPath, "-assign", badQueries).Run(); err == nil {
		t.Error("genclus -assign with unresolvable query should fail")
	}

	// 3. The experiments tool lists its registry.
	listing := string(run(experimentsBin, "-list"))
	for _, id := range []string{"fig5", "table5", "parallel", "selectk"} {
		if !strings.Contains(listing, id) {
			t.Errorf("experiment listing missing %s", id)
		}
	}

	// 4. Error paths exit non-zero.
	if err := exec.Command(genclusBin, "-in", "/definitely/missing.json", "-k", "4").Run(); err == nil {
		t.Error("genclus with missing input should fail")
	}
	if err := exec.Command(datagenBin, "-kind", "nope", "-out", netPath).Run(); err == nil {
		t.Error("datagen with bogus kind should fail")
	}
	if err := exec.Command(experimentsBin, "-run", "bogus").Run(); err == nil {
		t.Error("experiments with bogus id should fail")
	}
}
