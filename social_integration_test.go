package genclus_test

import (
	"testing"

	"genclus"
)

// TestSocialNetworkEndToEnd is the whole-system integration test on the
// paper's introductory scenario: a three-type social network mixing a
// categorical attribute (profiles, observed for ~30% of users), a second
// categorical attribute (video descriptions, complete on videos), a numeric
// attribute (clip length, complete on videos) and one object type
// (comments) with no attributes whatsoever. GenClus must recover the
// planted communities for every type and down-weight the cross-community
// friendship relation.
func TestSocialNetworkEndToEnd(t *testing.T) {
	cfg := genclus.DefaultSocialConfig(23)
	cfg.NumUsers = 150
	cfg.NumVideos = 75
	cfg.NumComments = 200
	ds, err := genclus.GenerateSocial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := ds.Net

	opts := genclus.DefaultOptions(ds.NumClusters)
	opts.Seed = 24
	// The paper's σ=0.1 prior is calibrated for its 1k–14k-object networks;
	// on this smaller network the strength prior must loosen proportionally
	// (see EXPERIMENTS.md, Fig. 9 notes).
	opts.PriorSigma = 0.5
	res, err := genclus.Fit(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := genclus.HardLabels(res.Theta)

	nmiOf := func(objType string) float64 {
		t.Helper()
		var p, truth []int
		for _, v := range net.ObjectsOfType(objType) {
			lab, ok := ds.Labels[v]
			if !ok {
				t.Fatalf("object %d of type %s unlabeled", v, objType)
			}
			p = append(p, pred[v])
			truth = append(truth, lab)
		}
		nmi, err := genclus.NMI(p, truth)
		if err != nil {
			t.Fatal(err)
		}
		return nmi
	}

	if nmi := nmiOf("video"); nmi < 0.75 {
		t.Errorf("video NMI = %v (videos carry text + clip length)", nmi)
	}
	if nmi := nmiOf("user"); nmi < 0.6 {
		t.Errorf("user NMI = %v (users are 70%% attribute-free)", nmi)
	}
	if nmi := nmiOf("comment"); nmi < 0.45 {
		t.Errorf("comment NMI = %v (comments are 100%% attribute-free)", nmi)
	}

	// The noisy friendship relation must earn less strength than the
	// community-respecting like relation.
	if !(res.Gamma["likes"] > res.Gamma["friend"]) {
		t.Errorf("γ(likes)=%v should exceed γ(friend)=%v", res.Gamma["likes"], res.Gamma["friend"])
	}

	// ARI and purity agree with NMI that the clustering is real.
	var p, truth []int
	for v, lab := range ds.Labels {
		p = append(p, pred[v])
		truth = append(truth, lab)
	}
	ari, err := genclus.AdjustedRandIndex(p, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.5 {
		t.Errorf("overall ARI = %v", ari)
	}
	purity, err := genclus.Purity(p, truth)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.75 {
		t.Errorf("overall purity = %v", purity)
	}
}
