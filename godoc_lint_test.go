package genclus_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// documentedPackages are the directories whose exported identifiers form
// the documented surface: the public library facade, the client SDK, the
// network substrate whose types (Network, Builder, CSR, Limits, …) are
// re-exported or returned across the internal boundary, the persistence
// substrate (the snapshot codec whose errors and limits cross the API,
// and the crash-safe blob store genclusd's durability rests on), and the
// online inference engine whose query/assignment types the facade
// re-exports (Assigner, AssignQuery, Assignment, …).
var documentedPackages = []string{".", "client", "internal/hin", "internal/infer", "internal/metrics", "internal/snapshot", "internal/store"}

// TestExportedIdentifiersAreDocumented is the godoc linter CI runs (the
// repo cannot assume revive/golint binaries exist): every exported
// top-level type, function, method, constant and variable in the
// documented surface must carry a doc comment, and every exported struct
// field or interface method in an exported type must too. The error
// message names the file:line so a failure is a one-hop fix.
func TestExportedIdentifiersAreDocumented(t *testing.T) {
	var missing []string
	report := func(fset *token.FileSet, pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, what, name))
	}

	for _, dir := range documentedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() || !exportedReceiver(d) {
							continue
						}
						if d.Doc == nil {
							what := "function"
							if d.Recv != nil {
								what = "method"
							}
							report(fset, d.Pos(), what, d.Name.Name)
						}
					case *ast.GenDecl:
						checkGenDecl(fset, d, report)
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s", len(missing), strings.Join(missing, "\n  "))
	}
}

// exportedReceiver reports whether a function is free-standing or a method
// on an exported type (methods on unexported types are not part of the
// documented surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func checkGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(*token.FileSet, token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if sp.Doc == nil && d.Doc == nil {
				report(fset, sp.Pos(), "type", sp.Name.Name)
			}
			checkTypeMembers(fset, sp, report)
		case *ast.ValueSpec:
			// A doc comment on the const/var group covers its members.
			if sp.Doc != nil || d.Doc != nil {
				continue
			}
			for _, name := range sp.Names {
				if name.IsExported() {
					report(fset, name.Pos(), "const/var", name.Name)
				}
			}
		}
	}
}

// checkTypeMembers requires docs on exported struct fields and interface
// methods of an exported type (a same-line comment counts — hin uses that
// style for dense field lists).
func checkTypeMembers(fset *token.FileSet, sp *ast.TypeSpec, report func(*token.FileSet, token.Pos, string, string)) {
	var fields *ast.FieldList
	var what string
	switch tt := sp.Type.(type) {
	case *ast.StructType:
		fields, what = tt.Fields, "field"
	case *ast.InterfaceType:
		fields, what = tt.Methods, "interface method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(fset, name.Pos(), what, sp.Name.Name+"."+name.Name)
			}
		}
	}
}
