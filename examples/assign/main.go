// Assign example: the fit-and-serve workflow. A citation network is
// clustered once and saved as a binary snapshot — the artifact a serving
// tier ships around — and then brand-new papers are folded into the
// snapshot's hidden space with the online inference engine: no refit, just
// the closed-form posterior from the learned memberships, relation
// strengths and attribute models. The three queries show the
// incomplete-attributes story end to end: a paper known only by its
// citations, one known only by its title words, and one with both.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"genclus"
)

// build assembles a two-community citation network: perTopic papers per
// community with disjoint vocabulary blocks and within-community citations.
func build(perTopic int) *genclus.Network {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "title", Kind: genclus.Categorical, VocabSize: 40})
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = fmt.Sprintf("paper-t%d-%04d", topic, i)
			b.AddObject(ids[i], "paper")
			for w := 0; w < 10; w++ {
				b.AddTermCount(ids[i], "title", topic*20+(i+w)%20, 1)
			}
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+7)%perTopic], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	net := build(120)
	opts := genclus.DefaultOptions(2)
	opts.Seed = 1
	model, err := genclus.Fit(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reload the snapshot — the serving tier never holds the
	// training network, only this file.
	dir, err := os.MkdirTemp("", "genclus-assign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "model.gcsnap")
	if err := genclus.SaveModel(snapPath, model); err != nil {
		log.Fatal(err)
	}
	served, err := genclus.LoadModel(snapPath)
	if err != nil {
		log.Fatal(err)
	}

	// One reusable engine per model; steady-state batches allocate nothing.
	assigner, err := genclus.NewAssigner(served, genclus.AssignOptions{TopK: 2})
	if err != nil {
		log.Fatal(err)
	}

	queries := []genclus.AssignQuery{
		{
			ID: "cites-topic0",
			Links: []genclus.AssignLink{
				{Relation: "cites", To: "paper-t0-0003", Weight: 1},
				{Relation: "cites", To: "paper-t0-0017", Weight: 1},
			},
		},
		{
			ID: "titled-topic1",
			Terms: []genclus.AssignCatObs{{
				Attr:  "title",
				Terms: []genclus.TermCount{{Term: 25, Count: 2}, {Term: 31, Count: 1}},
			}},
		},
		{
			ID:    "both-topic0",
			Links: []genclus.AssignLink{{Relation: "cites", To: "paper-t0-0040", Weight: 1}},
			Terms: []genclus.AssignCatObs{{
				Attr:  "title",
				Terms: []genclus.TermCount{{Term: 5, Count: 1}},
			}},
		},
	}
	assignments, err := assigner.AssignBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range assignments {
		fmt.Printf("%-14s → cluster %d  θ=%.4f  top=%v  fold-in iters=%d\n",
			a.ID, a.Cluster, a.Theta, a.Top, a.FoldInIters)
	}
}
