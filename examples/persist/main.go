// Persistence example: the fit-once, refit-anywhere workflow. A citation
// network is clustered, the fitted model is saved as a binary snapshot (the
// same format genclusd's /v1/models registry exports and imports and the
// genclus CLI reads with -from-model), the snapshot is loaded back as if in
// another process — or on another machine, days later — and a refit of a
// grown network warm-starts from it in a fraction of the cold fit's EM
// iterations. Because the codec is exact (floats cross as raw bits), the
// refit from the loaded snapshot is bitwise-identical to one from the
// original in-memory model.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"genclus"
)

// build assembles a two-community citation network: perTopic papers per
// community with disjoint vocabulary blocks and within-community citations,
// plus extra papers appended after the (identical) base structure.
func build(perTopic, extra int) *genclus.Network {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "title", Kind: genclus.Categorical, VocabSize: 40})
	add := func(topic, i int, tag string) string {
		id := fmt.Sprintf("%s-t%d-%04d", tag, topic, i)
		b.AddObject(id, "paper")
		for w := 0; w < 10; w++ {
			b.AddTermCount(id, "title", topic*20+(i+w)%20, 1)
		}
		return id
	}
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = add(topic, i, "paper")
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+5)%perTopic], "cites", 1)
		}
		for i := 0; i < extra; i++ {
			id := add(topic, i, "new")
			b.AddLink(id, ids[i%perTopic], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	base := build(150, 0)
	opts := genclus.DefaultOptions(2)
	opts.EMTol, opts.OuterTol = 1e-6, 1e-6

	model, err := genclus.Fit(base, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold fit: %d EM iterations, gamma=%.3f\n",
		model.EMIterations, model.Gamma["cites"])

	// Persist the fitted state and drop the in-memory model.
	path := filepath.Join(os.TempDir(), "persist-example.gcsnap")
	if err := genclus.SaveModel(path, model); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved snapshot: %d bytes\n", info.Size())

	// "Another process": load the snapshot and refit the grown network.
	loaded, err := genclus.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	grown := build(150, 8)
	refit, err := loaded.Refit(grown, genclus.DefaultOptions(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm refit of grown network: %d EM iterations (cold took %d)\n",
		refit.EMIterations, model.EMIterations)
	_ = os.Remove(path)
}
