// Bibliographic example (paper Example 1): detect research areas in a
// DBLP-style author–conference–paper network where only papers carry text.
// Authors and venues are clustered purely through their typed links, and
// GenClus reports which relations identified a paper's area best.
package main

import (
	"fmt"
	"log"
	"sort"

	"genclus"
)

func main() {
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaACP, 7)
	cfg.NumAuthors = 400
	cfg.NumPapers = 700
	cfg.LabeledPapers = 80
	ds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := ds.Net
	fmt.Printf("network: %s\n", net.Stats())

	opts := genclus.DefaultOptions(ds.NumClusters)
	opts.Seed = 7
	res, err := genclus.Fit(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Clustering accuracy against the generator's ground truth, per type.
	pred := genclus.HardLabels(res.Theta)
	for _, typ := range []string{"conference", "author", "paper"} {
		var predSub, truthSub []int
		for _, v := range net.ObjectsOfType(typ) {
			if lab, ok := ds.Labels[v]; ok {
				predSub = append(predSub, pred[v])
				truthSub = append(truthSub, lab)
			}
		}
		if len(predSub) == 0 {
			continue
		}
		nmi, err := genclus.NMI(predSub, truthSub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("NMI(%s) = %.4f over %d labeled objects\n", typ, nmi, len(predSub))
	}

	fmt.Println("\nlearned relation strengths:")
	rels := append([]string(nil), net.Relations()...)
	sort.Slice(rels, func(i, j int) bool { return res.Gamma[rels[i]] > res.Gamma[rels[j]] })
	for _, rel := range rels {
		fmt.Printf("  γ(%-16s) = %7.3f\n", rel, res.Gamma[rel])
	}
	fmt.Println("\nThe paper's headline finding shows up here: written_by (paper→author)")
	fmt.Println("earns a much higher strength than published_by (paper→conference),")
	fmt.Println("because venues cover broader ground than individual authors.")

	// Research-area decision for a venue: print the memberships of the
	// conferences, which carry no text at all.
	fmt.Println("\nconference memberships (no text attribute — links only):")
	for _, v := range net.ObjectsOfType("conference")[:5] {
		fmt.Printf("  %-8s θ = %v\n", net.Object(v).ID, compact(res.Theta[v]))
	}
}

func compact(theta []float64) []float64 {
	out := make([]float64, len(theta))
	for i, v := range theta {
		out[i] = float64(int(v*1000+0.5)) / 1000
	}
	return out
}
