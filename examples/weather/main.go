// Weather example (paper Example 2): cluster a sensor network where each
// sensor observes only ONE of the two attributes that jointly define the
// weather pattern — the incomplete-attribute setting the paper is built
// around. Links are k-nearest-neighbor relations per sensor type.
package main

import (
	"fmt"
	"log"

	"genclus"
)

func main() {
	// Setting 2 is the hard configuration: a pattern is identifiable only
	// from temperature AND precipitation jointly, which no sensor observes.
	cfg := genclus.WeatherSetting2(400, 200, 5, 11)
	ds, err := genclus.GenerateWeather(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := ds.Net
	fmt.Printf("network: %s\n", net.Stats())

	opts := genclus.DefaultOptions(ds.NumClusters)
	opts.OuterIters = 5
	opts.EMIters = 5
	opts.InitSeeds = 16
	opts.InitSeedSteps = 12
	opts.Seed = 11
	res, err := genclus.Fit(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	pred := genclus.HardLabels(res.Theta)
	var predAll, truthAll []int
	for v, lab := range ds.Labels {
		predAll = append(predAll, pred[v])
		truthAll = append(truthAll, lab)
	}
	nmi, err := genclus.NMI(predAll, truthAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NMI against generating weather patterns: %.4f\n", nmi)

	fmt.Println("\nfitted pattern components (mean per attribute and cluster):")
	for _, am := range res.Attrs {
		if am.Gauss == nil {
			continue
		}
		fmt.Printf("  %-14s µ = %v\n", am.Name, rounded(am.Gauss.Mu))
	}

	fmt.Println("\nlearned kNN relation strengths:")
	for _, rel := range []string{"<T,T>", "<T,P>", "<P,T>", "<P,P>"} {
		fmt.Printf("  γ(%s) = %.3f\n", rel, res.Gamma[rel])
	}
	fmt.Println("\nTemperature sensors are the less noisy type in this generator, so")
	fmt.Println("relations pointing at T-typed neighbors earn higher strengths —")
	fmt.Println("the behaviour Table 5 of the paper reports.")
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*100+copysign(0.5, v))) / 100
	}
	return out
}

func copysign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}
