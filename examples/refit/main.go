// Refit example: the evolving-network workflow. A bibliographic network is
// clustered once, grows by a batch of new papers citing into the existing
// literature, and is re-clustered with Model.Refit — warm-started from the
// previous fit instead of from scratch. The warm start converges in a
// fraction of the cold fit's EM iterations because memberships carry over
// by object ID, relation strengths by name, and attribute models by name;
// only the new objects start uninformed, and one EM pass pulls them toward
// their cited neighborhoods.
package main

import (
	"fmt"
	"log"

	"genclus"
)

// build assembles a two-community citation network: perTopic papers per
// community with disjoint vocabulary blocks and within-community citations,
// plus extra "newly published" papers per community appended after the base
// structure. The base part is identical across calls, which is what makes
// the grown network a continuation of the original rather than a new one.
func build(perTopic, extra int) *genclus.Network {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "title", Kind: genclus.Categorical, VocabSize: 40})
	add := func(topic, i int, tag string) string {
		id := fmt.Sprintf("%s-t%d-%04d", tag, topic, i)
		b.AddObject(id, "paper")
		for w := 0; w < 10; w++ {
			b.AddTermCount(id, "title", topic*20+(i+w)%20, 1)
		}
		return id
	}
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = add(topic, i, "paper")
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+7)%perTopic], "cites", 1)
		}
		for i := 0; i < extra; i++ {
			id := add(topic, i, "new")
			b.AddLink(id, ids[i%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+3)%perTopic], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	base := build(250, 0)
	fmt.Printf("day 1 network:  %s\n", base.Stats())

	opts := genclus.DefaultOptions(2)
	opts.Seed = 3
	opts.EMTol = 1e-8
	opts.OuterTol = 1e-8
	model, err := genclus.Fit(base, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold fit:       %d EM iterations, g1 = %.2f\n", model.EMIterations, model.Objective)

	// The network grows by 5%: new papers arrive, citing into the
	// existing literature.
	grown := build(250, 13)
	fmt.Printf("\nday 2 network:  %s\n", grown.Stats())

	// Re-cluster from scratch (what the old one-shot API forced)...
	coldOpts := opts
	coldOpts.EMTol = 1e-6
	coldOpts.OuterTol = 1e-6
	cold, err := genclus.Fit(grown, coldOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold re-fit:    %d EM iterations, g1 = %.2f\n", cold.EMIterations, cold.Objective)

	// ...versus warm-starting from yesterday's model.
	warm, err := model.Refit(grown, genclus.DefaultOptions(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm refit:     %d EM iterations, g1 = %.2f  (%.1fx less EM work)\n",
		warm.EMIterations, warm.Objective,
		float64(cold.EMIterations)/float64(warm.EMIterations))

	labels := warm.HardLabels()
	newcomer, _ := grown.IndexOf("new-t0-0000")
	anchor, _ := grown.IndexOf("paper-t0-0000")
	fmt.Printf("\nnew paper follows its citations into the anchor's cluster: %v\n",
		labels[newcomer] == labels[anchor])
}
