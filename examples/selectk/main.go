// Model-selection example: the paper fixes K and points to AIC/BIC for
// choosing it (§2.2). This example sweeps K on a bibliographic network whose
// generator planted exactly 4 research areas and shows AIC recovering the
// truth.
package main

import (
	"fmt"
	"log"

	"genclus"
)

func main() {
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaAC, 17)
	cfg.NumAuthors = 300
	cfg.NumPapers = 500
	ds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s (generator truth: 4 areas)\n\n", ds.Net.Stats())

	opts := genclus.DefaultOptions(2) // K is overridden per candidate
	opts.OuterIters = 5
	opts.EMIters = 8
	opts.Seed = 17
	scores, err := genclus.SelectK(ds.Net, opts, 2, 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s %-14s %-10s %-14s %-14s\n", "K", "loglik", "params", "AIC", "BIC")
	for _, s := range scores {
		fmt.Printf("%-4d %-14.1f %-10d %-14.1f %-14.1f\n", s.K, s.LogLik, s.Params, s.AIC, s.BIC)
	}

	bestA, err := genclus.BestAIC(scores)
	if err != nil {
		log.Fatal(err)
	}
	bestB, err := genclus.BestBIC(scores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAIC selects K = %d; BIC selects K = %d\n", bestA.K, bestB.K)
	fmt.Println("(BIC's ln(n) penalty over-punishes the per-object membership")
	fmt.Println("parameters of this conditional likelihood, so prefer AIC here.)")
}
