// Link-prediction example (paper §5.2.2): after clustering, membership
// similarity predicts which conferences an author will publish in. The
// asymmetric cross-entropy similarity −H(θ_j, θ_i) — the same function the
// model's consistency term is built from — gives the best rankings.
package main

import (
	"fmt"
	"log"
	"sort"

	"genclus"
)

func main() {
	cfg := genclus.DefaultBiblioConfig(genclus.SchemaAC, 13)
	cfg.NumAuthors = 300
	cfg.NumPapers = 500
	ds, err := genclus.GenerateBibliographic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := ds.Net

	opts := genclus.DefaultOptions(ds.NumClusters)
	opts.Seed = 13
	res, err := genclus.Fit(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MAP for predicting the <A,C> publish_in relation:")
	for _, sim := range genclus.Similarities() {
		mapv, err := genclus.LinkPredictionMAP(net, res.Theta, "publish_in", sim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %.4f\n", sim.Name, mapv)
	}

	// Show one concrete ranking: the most likely venues for one author.
	author := net.ObjectsOfType("author")[0]
	sim := genclus.Similarities()[2] // −H(θj, θi)
	type cand struct {
		id    string
		score float64
	}
	var cands []cand
	for _, c := range net.ObjectsOfType("conference") {
		cands = append(cands, cand{
			id:    net.Object(c).ID,
			score: sim.Func(res.Theta[author], res.Theta[c]),
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	fmt.Printf("\ntop predicted venues for %s:\n", net.Object(author).ID)
	for _, c := range cands[:5] {
		fmt.Printf("  %-8s score %.4f\n", c.id, c.score)
	}
	actual := map[string]bool{}
	for _, e := range net.OutEdges(author) {
		if net.RelationName(e.Rel) == "publish_in" {
			actual[net.Object(e.To).ID] = true
		}
	}
	fmt.Printf("actually published in: %v\n", keys(actual))
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
