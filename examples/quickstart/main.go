// Quickstart: the paper's Fig. 1 motivating scenario in miniature — a
// political forum with users, blogs, books and friendships, where only some
// users state their political interests. GenClus clusters every object into
// a shared hidden space and learns which relations matter for that purpose
// (the paper's expectation: user-like-book beats friendship).
package main

import (
	"fmt"
	"log"

	"genclus"
)

func main() {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 8})
	// Vocabulary: terms 0-3 lean "red", terms 4-7 lean "blue".

	// Books with clear political text.
	for i, terms := range [][]int{{0, 1, 2}, {1, 2, 3}, {4, 5, 6}, {5, 6, 7}} {
		id := fmt.Sprintf("book%d", i)
		b.AddObject(id, "book")
		for _, term := range terms {
			b.AddTermCount(id, "text", term, 3)
		}
	}
	// Blogs, also with text (shared with the books' vocabulary blocks so the
	// topics are anchored).
	for i, terms := range [][]int{{0, 1, 2}, {1, 2, 3}, {4, 5, 6}, {5, 6, 7}} {
		id := fmt.Sprintf("blog%d", i)
		b.AddObject(id, "blog")
		for _, term := range terms {
			b.AddTermCount(id, "text", term, 2)
		}
	}
	// Users: only user0 and user3 state their interests in their profile;
	// the others have empty profiles (the incomplete-attribute case).
	for i := 0; i < 6; i++ {
		b.AddObject(fmt.Sprintf("user%d", i), "user")
	}
	b.AddTermCount("user0", "text", 1, 4) // red-leaning profile
	b.AddTermCount("user3", "text", 6, 4) // blue-leaning profile

	like := func(user, book string) {
		b.AddLink(user, book, "like", 1)
		b.AddLink(book, user, "liked_by", 1)
	}
	write := func(user, blog string) {
		b.AddLink(user, blog, "write", 1)
		b.AddLink(blog, user, "written_by", 1)
	}
	friend := func(u1, u2 string) {
		b.AddLink(u1, u2, "friend", 1)
		b.AddLink(u2, u1, "friend", 1)
	}
	// Red camp: users 0-2. Blue camp: users 3-5.
	like("user0", "book0")
	like("user1", "book0")
	like("user1", "book1")
	like("user2", "book1")
	like("user3", "book2")
	like("user4", "book2")
	like("user4", "book3")
	like("user5", "book3")
	write("user0", "blog0")
	write("user2", "blog1")
	write("user3", "blog2")
	write("user5", "blog3")
	// Friendship crosses camps — a noisy relation for this purpose.
	friend("user0", "user1")
	friend("user1", "user2")
	friend("user3", "user4")
	friend("user4", "user5")
	friend("user2", "user3") // cross-camp friendship
	friend("user0", "user5") // cross-camp friendship

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	opts := genclus.DefaultOptions(2)
	opts.Seed = 42
	// The paper's σ = 0.1 prior is calibrated for networks with thousands
	// of links; on a toy network it would crush every strength to zero, so
	// loosen it.
	opts.PriorSigma = 1
	res, err := genclus.Fit(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cluster memberships (political interest space):")
	labels := genclus.HardLabels(res.Theta)
	for v := 0; v < net.NumObjects(); v++ {
		obj := net.Object(v)
		fmt.Printf("  %-7s (%-4s) cluster %d  θ = [%.3f %.3f]\n",
			obj.ID, obj.Type, labels[v], res.Theta[v][0], res.Theta[v][1])
	}

	fmt.Println("\nLearned link-type strengths (higher = more reliable for this purpose):")
	for _, rel := range net.Relations() {
		fmt.Printf("  γ(%-10s) = %.3f\n", rel, res.Gamma[rel])
	}
	fmt.Println("\nNote how the attribute-free users inherit their camp from the")
	fmt.Println("books and blogs they touch, and how cross-camp friendship earns a")
	fmt.Println("lower strength than the like/write relations.")
}
