// Mutate example: the continuous-clustering workflow. A genclusd daemon is
// started in-process, a citation network is uploaded and fitted once, and
// then the network starts changing — new papers arrive through the
// streaming mutation API, each publishing a new immutable view generation.
// The daemon's supervisor notices the pending mutations, warm-starts a
// refit from the previous model in the background, and publishes the
// rolled-forward model; the client polls SupervisorStatus until the
// auto-refit lands and folds a brand-new query into it with /assign. No
// endpoint is ever taken offline: assigns against the old model keep
// working throughout, and the refit's warm start costs a fraction of the
// original cold fit.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net/http/httptest"
	"time"

	"genclus"
	"genclus/client"
	"genclus/internal/server"
)

// build assembles a two-community citation network: perTopic papers per
// community with disjoint vocabulary blocks and within-community citations.
func build(perTopic int) *genclus.Network {
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "title", Kind: genclus.Categorical, VocabSize: 40})
	for topic := 0; topic < 2; topic++ {
		ids := make([]string, perTopic)
		for i := range ids {
			ids[i] = fmt.Sprintf("paper-t%d-%04d", topic, i)
			b.AddObject(ids[i], "paper")
			for w := 0; w < 10; w++ {
				b.AddTermCount(ids[i], "title", topic*20+(i+w)%20, 1)
			}
		}
		for i, id := range ids {
			b.AddLink(id, ids[(i+1)%perTopic], "cites", 1)
			b.AddLink(id, ids[(i+7)%perTopic], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	// An in-process daemon stands in for a deployed genclusd; everything
	// below talks to it through the SDK exactly as a remote client would.
	srv, err := server.New(server.Config{
		Workers:              2,
		SupervisorMaxPending: 3, // auto-refit after 3 uncovered mutations
		SupervisorInterval:   50 * time.Millisecond,
		Logger:               slog.New(slog.DiscardHandler),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	net := build(120)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded network %s: %d objects, %d links\n", info.ID, info.Objects, info.Links)

	seed := int64(1)
	job, err := c.SubmitJob(ctx, client.JobSpec{
		NetworkID: info.ID, K: 2,
		Options: &client.JobOptions{Seed: &seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.WaitForResult(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold fit:  %d EM iterations, model %s\n", res.EMIterations, status.ModelID)

	// The network evolves: three batches of new papers arrive, each citing
	// into one community. Each mutation publishes a new view generation
	// without interrupting anything already running.
	for batch := 0; batch < 3; batch++ {
		topic := batch % 2
		id := fmt.Sprintf("late-t%d-%04d", topic, batch)
		mr, err := c.AddObjects(ctx, info.ID,
			[]client.NewObject{{
				ID: id, Type: "paper",
				Terms: map[string][]client.TermCount{"title": {{Term: topic*20 + batch, Count: 3}}},
			}},
			[]client.Edge{
				{From: id, To: fmt.Sprintf("paper-t%d-%04d", topic, batch), Relation: "cites", Weight: 1},
				{From: id, To: fmt.Sprintf("paper-t%d-%04d", topic, batch+5), Relation: "cites", Weight: 1},
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mutation:  +%s → generation %d (%d objects, delta log depth %d)\n",
			id, mr.Generation, mr.Objects, mr.DeltaLogDepth)
	}

	// The third mutation reached SupervisorMaxPending; the supervisor
	// warm-starts a refit of the generation-3 view in the background.
	var st *client.SupervisorStatus
	for {
		if st, err = c.SupervisorStatus(ctx, info.ID); err != nil {
			log.Fatal(err)
		}
		if st.RefitsSucceeded >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("auto-refit: generation %d covered, rolled-forward model %s (drift %.3f)\n",
		st.LastRefitGeneration, st.LastModelID, st.DriftScore)

	// A brand-new paper folds into the rolled-forward model — which has
	// already absorbed the late arrivals, so citing only a late paper is
	// enough to place it.
	ar, err := c.AssignObjects(ctx, st.LastModelID, client.AssignRequest{
		TopK: 2,
		Objects: []client.AssignObject{{
			ID:    "fresh-query",
			Links: []client.AssignLink{{Relation: "cites", To: "late-t0-0000", Weight: 1}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	a := ar.Assignments[0]
	fmt.Printf("assign:    %s → cluster %d  θ=%.4f\n", a.ID, a.Cluster, a.Theta)
}
