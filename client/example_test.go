package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"genclus"
	"genclus/client"
	"genclus/internal/server"
)

// ExampleClient_WaitForResult drives the full SDK flow against an
// in-process genclusd: upload a network, submit a fit, block on the live
// event stream until the job finishes, and read the fitted model. Against a
// real deployment, replace the httptest URL with the daemon's address.
func ExampleClient_WaitForResult() {
	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 10})
	for i := 0; i < 4; i++ {
		red := fmt.Sprintf("red%d", i)
		blue := fmt.Sprintf("blue%d", i)
		b.AddObject(red, "doc")
		b.AddObject(blue, "doc")
		for w := 0; w < 8; w++ {
			b.AddTermCount(red, "text", w%5, 1)
			b.AddTermCount(blue, "text", 5+w%5, 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	ctx := context.Background()
	c := client.New(ts.URL)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		fmt.Println(err)
		return
	}
	seed := int64(5)
	job, err := c.SubmitJob(ctx, client.JobSpec{
		NetworkID: info.ID,
		K:         2,
		Options:   &client.JobOptions{Seed: &seed},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := c.WaitForResult(ctx, job.ID)
	if err != nil {
		fmt.Println(err)
		return
	}
	clusters := make(map[string]int, len(res.Objects))
	for _, o := range res.Objects {
		clusters[o.ID] = o.Cluster
	}
	fmt.Println("objects clustered:", len(res.Objects))
	fmt.Println("red and blue separated:", clusters["red0"] != clusters["blue0"])
	// Output:
	// objects clustered: 8
	// red and blue separated: true
}
