package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Event is one Server-Sent Event from GET /v1/jobs/{id}/events. Exactly one
// of Job and Progress is set: "state" events carry the full job status
// (first event on connect, last event at terminal), "progress" events carry
// a fit progress report.
type Event struct {
	Type     string    // SSE event name: "state" or "progress"
	Job      *Job      // set for "state" events
	Progress *Progress // set for "progress" events
}

// ErrStopStreaming, returned from a StreamEvents callback, ends the stream
// early without error.
var ErrStopStreaming = errors.New("client: stop streaming")

// StreamEvents subscribes to a job's live event stream and invokes fn for
// every event until the server closes the stream (the job reached a
// terminal state), fn returns an error (ErrStopStreaming ends cleanly), or
// ctx is cancelled. Unknown event types are skipped, so servers may add
// event kinds without breaking older clients.
func (c *Client) StreamEvents(ctx context.Context, jobID string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if tp := callTraceparent(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: stream events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg, code, reqID := errorMessage(data)
		return &APIError{StatusCode: resp.StatusCode, Message: msg, Code: code, RequestID: reqID}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var evType string
	var data strings.Builder
	flush := func() error {
		defer func() { evType = ""; data.Reset() }()
		if data.Len() == 0 {
			return nil
		}
		ev, ok, err := parseEvent(evType, data.String())
		if err != nil {
			return err
		}
		if !ok {
			return nil // unknown event type: forward-compatible skip
		}
		return fn(ev)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopStreaming) {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, "event:"):
			evType = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case strings.HasPrefix(line, ":"):
			// comment/keep-alive; ignore
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("client: read event stream: %w", err)
	}
	// Stream ended mid-event (no trailing blank line): deliver what we have.
	if err := flush(); err != nil && !errors.Is(err, ErrStopStreaming) {
		return err
	}
	return nil
}

func parseEvent(evType, payload string) (Event, bool, error) {
	switch evType {
	case "state":
		var j Job
		if err := json.Unmarshal([]byte(payload), &j); err != nil {
			return Event{}, false, fmt.Errorf("client: decode state event: %w", err)
		}
		return Event{Type: evType, Job: &j}, true, nil
	case "progress":
		var p Progress
		if err := json.Unmarshal([]byte(payload), &p); err != nil {
			return Event{}, false, fmt.Errorf("client: decode progress event: %w", err)
		}
		return Event{Type: evType, Progress: &p}, true, nil
	default:
		return Event{}, false, nil
	}
}
