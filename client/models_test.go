package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"genclus"
	"genclus/client"
	"genclus/internal/server"
)

// TestSDKModelRegistry drives the /v1/models surface exclusively through
// the SDK: a finished fit's model lists and exports, the export decodes
// into a local genclus.Model, import registers a copy byte-identically, a
// job warm-starts from the imported model, and delete empties the registry.
func TestSDKModelRegistry(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1})
	ctx := t.Context()

	net, _ := testNetwork(t, 20)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.ModelID == "" {
		t.Fatal("finished job reports no model id")
	}

	models, err := c.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].ID != status.ModelID || models[0].JobID != job.ID {
		t.Fatalf("registry listing wrong: %+v", models)
	}
	got, err := c.GetModel(ctx, status.ModelID)
	if err != nil || got.K != 2 || got.Objects != 40 || got.Digest == "" {
		t.Fatalf("get model: %+v, %v", got, err)
	}

	data, err := c.ExportModel(ctx, status.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	// The exported snapshot is a complete local model: decode it and
	// warm-start a local refit from the remote fit.
	local, err := genclus.DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := local.Refit(net, genclus.DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if refit.EMIterations <= 0 {
		t.Fatal("local refit from exported snapshot did no work?")
	}

	imported, err := c.ImportModel(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if imported.Digest != got.Digest || imported.ID == got.ID {
		t.Fatalf("imported entry wrong: %+v", imported)
	}
	reexport, err := c.ExportModel(ctx, imported.ID)
	if err != nil || !bytes.Equal(reexport, data) {
		t.Fatalf("re-export not byte-identical: %d vs %d bytes, %v", len(reexport), len(data), err)
	}

	// Warm-start a job from the imported model; it must converge faster
	// than the cold fit and report its own fresh model.
	warm, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, WarmStartFromModel: imported.ID, Options: quickOpts(9)})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := c.WaitForResult(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := c.JobResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.EMIterations >= coldRes.EMIterations {
		t.Fatalf("warm start not faster: %d vs %d EM iterations", warmRes.EMIterations, coldRes.EMIterations)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Models != 3 { // cold fit + import + warm fit
		t.Fatalf("health models = %d, want 3", h.Models)
	}

	for _, m := range []string{status.ModelID, imported.ID} {
		if err := c.DeleteModel(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DeleteModel(ctx, status.ModelID); !client.IsNotFound(err) {
		t.Fatalf("double delete: %v", err)
	}
	if models, err = c.ListModels(ctx); err != nil || len(models) != 1 {
		t.Fatalf("registry after deletes: %+v, %v", models, err)
	}

	// Garbage import is a 400, surfaced as *APIError.
	if _, err := c.ImportModel(ctx, []byte("junk")); err == nil {
		t.Fatal("garbage import accepted")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != 400 {
			t.Fatalf("garbage import error: %v", err)
		}
	}
}

// TestSDKErrJobEvicted pins the typed eviction error: polling a job the
// TTL sweeper removed surfaces ErrJobEvicted (errors.Is) rather than a
// generic 404, while a never-existed job stays a plain not-found.
func TestSDKErrJobEvicted(t *testing.T) {
	srv, err := server.New(server.Config{
		Workers:    1,
		JobTTL:     100 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithPollInterval(5*time.Millisecond))
	ctx := t.Context()

	net, _ := testNetwork(t, 10)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	// Wait out the TTL plus a couple of sweeps.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = c.JobStatus(ctx, job.ID)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !errors.Is(err, client.ErrJobEvicted) {
		t.Fatalf("evicted status error: %v, want ErrJobEvicted", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("eviction must still be an *APIError 404: %v", err)
	}

	// WaitForResult surfaces it too (via its polling path).
	if _, err := c.WaitForResult(ctx, job.ID); !errors.Is(err, client.ErrJobEvicted) {
		t.Fatalf("WaitForResult on evicted job: %v, want ErrJobEvicted", err)
	}

	// Never-existed: plain 404, not ErrJobEvicted.
	_, err = c.JobStatus(ctx, "job_never_existed")
	if !client.IsNotFound(err) || errors.Is(err, client.ErrJobEvicted) {
		t.Fatalf("unknown job error: %v", err)
	}

	// The fitted model survives eviction — the registry keeps serving it.
	models, err := c.ListModels(ctx)
	if err != nil || len(models) != 1 {
		t.Fatalf("model registry after eviction: %+v, %v", models, err)
	}
}

// TestSDKExportImportAcrossDaemons moves a model between two independent
// daemons through the SDK — the portability path the snapshot format
// exists for.
func TestSDKExportImportAcrossDaemons(t *testing.T) {
	a := testDaemon(t, server.Config{Workers: 1})
	b := testDaemon(t, server.Config{Workers: 1})
	ctx := context.Background()

	net, _ := testNetwork(t, 15)
	infoA, err := a.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := a.SubmitJob(ctx, client.JobSpec{NetworkID: infoA.ID, K: 2, Options: quickOpts(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	status, err := a.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.ExportModel(ctx, status.ModelID)
	if err != nil {
		t.Fatal(err)
	}

	imported, err := b.ImportModel(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := b.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := b.SubmitJob(ctx, client.JobSpec{NetworkID: infoB.ID, WarmStartFromModel: imported.ID, Options: quickOpts(2)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.WaitForResult(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := a.JobResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.EMIterations >= coldRes.EMIterations {
		t.Fatalf("cross-daemon warm start not faster: %d vs %d EM iterations", res.EMIterations, coldRes.EMIterations)
	}
}
