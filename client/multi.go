package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"genclus"
)

// MultiEndpoint fronts a genclusd replica tier: writes (network uploads,
// job submissions, imports, deletes) go to the primary, while AssignObjects
// spreads across the replicas round-robin with health-aware failover. An
// endpoint that answers at the transport level or with a 5xx is quarantined
// under exponential backoff and its traffic redistributes; typed
// application errors (404, 409, other 4xx) are returned to the caller
// immediately — failover must not paper over a replica that simply has not
// synced a model yet, that is the caller's consistency decision.
//
//	me := client.NewMultiEndpoint("http://primary:8080",
//		[]string{"http://replica1:8080", "http://replica2:8080"})
//	net, _ := me.UploadNetwork(ctx, nw)               // primary
//	res, _ := me.AssignObjects(ctx, modelID, req)     // replicas, failover
//
// When every replica is quarantined or failing, assigns fall back to the
// primary, and past that to the least-recently-quarantined replicas —
// MultiEndpoint returns an error only once every endpoint refused the
// request. MultiEndpoint is safe for concurrent use.
type MultiEndpoint struct {
	primary  *Client
	replicas []*endpoint

	quarantineBase time.Duration
	quarantineMax  time.Duration
	now            func() time.Time

	mu   sync.Mutex
	next int // round-robin cursor over replicas
}

// endpoint is one replica plus its quarantine state.
type endpoint struct {
	url string
	c   *Client

	mu       sync.Mutex
	failures int       // consecutive failures
	until    time.Time // quarantined until (zero = healthy)
}

// EndpointStatus reports one replica's health for observability.
type EndpointStatus struct {
	URL                 string    // replica base URL
	ConsecutiveFailures int       // current failure streak
	Quarantined         bool      // currently held out of rotation
	QuarantinedUntil    time.Time // when it re-enters rotation (zero if healthy)
}

// MultiOption customizes a MultiEndpoint.
type MultiOption func(*MultiEndpoint, *multiConfig)

// multiConfig carries construction-time knobs that are not fields.
type multiConfig struct {
	clientOpts []Option
}

// WithEndpointOptions applies Client options to every underlying endpoint
// client (primary and replicas) — e.g. WithHTTPClient for a shared
// transport. Per-call retries on replicas stay disabled regardless:
// MultiEndpoint's failover IS the retry.
func WithEndpointOptions(opts ...Option) MultiOption {
	return func(_ *MultiEndpoint, cfg *multiConfig) { cfg.clientOpts = append(cfg.clientOpts, opts...) }
}

// WithQuarantine sets the failover backoff window: a replica's first
// failure holds it out of rotation for base, doubling per consecutive
// failure up to max (defaults 1s and 30s).
func WithQuarantine(base, max time.Duration) MultiOption {
	return func(m *MultiEndpoint, _ *multiConfig) {
		if base > 0 {
			m.quarantineBase = base
		}
		if max > 0 {
			m.quarantineMax = max
		}
	}
}

// NewMultiEndpoint builds a MultiEndpoint over one primary and any number
// of replicas. With no replicas every request — including assigns — goes
// to the primary, so a caller can deploy the tier before scaling it.
func NewMultiEndpoint(primaryURL string, replicaURLs []string, opts ...MultiOption) *MultiEndpoint {
	m := &MultiEndpoint{
		quarantineBase: time.Second,
		quarantineMax:  30 * time.Second,
		now:            time.Now,
	}
	cfg := &multiConfig{}
	for _, o := range opts {
		o(m, cfg)
	}
	m.primary = New(primaryURL, cfg.clientOpts...)
	for _, u := range replicaURLs {
		// Replica clients never retry in place: a failed attempt should
		// move to the next endpoint immediately, not burn its backoff
		// budget against a dead listener.
		ropts := append(append([]Option{}, cfg.clientOpts...), WithRetries(0, 0))
		m.replicas = append(m.replicas, &endpoint{url: u, c: New(u, ropts...)})
	}
	return m
}

// Primary returns the primary's client, for the endpoints MultiEndpoint
// does not delegate explicitly (mutations, model admin, event streams).
func (m *MultiEndpoint) Primary() *Client { return m.primary }

// Endpoints reports every replica's current health state.
func (m *MultiEndpoint) Endpoints() []EndpointStatus {
	now := m.now()
	out := make([]EndpointStatus, 0, len(m.replicas))
	for _, ep := range m.replicas {
		ep.mu.Lock()
		st := EndpointStatus{
			URL:                 ep.url,
			ConsecutiveFailures: ep.failures,
		}
		if ep.until.After(now) {
			st.Quarantined = true
			st.QuarantinedUntil = ep.until
		}
		ep.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// ---- primary-routed delegations ----

// UploadNetwork uploads a network to the primary.
func (m *MultiEndpoint) UploadNetwork(ctx context.Context, net *genclus.Network) (*NetworkInfo, error) {
	return m.primary.UploadNetwork(ctx, net)
}

// SubmitJob submits a fit to the primary.
func (m *MultiEndpoint) SubmitJob(ctx context.Context, spec JobSpec) (*Job, error) {
	return m.primary.SubmitJob(ctx, spec)
}

// WaitForResult waits on the primary for a job to finish.
func (m *MultiEndpoint) WaitForResult(ctx context.Context, jobID string) (*Result, error) {
	return m.primary.WaitForResult(ctx, jobID)
}

// DeleteModel deletes a model on the primary; replicas drop it on their
// next sync pass.
func (m *MultiEndpoint) DeleteModel(ctx context.Context, modelID string) error {
	return m.primary.DeleteModel(ctx, modelID)
}

// ListModels lists the primary's registry — the authoritative model set
// replicas converge toward.
func (m *MultiEndpoint) ListModels(ctx context.Context) ([]ModelInfo, error) {
	return m.primary.ListModels(ctx)
}

// ---- replica-routed assign with failover ----

// AssignObjects folds new objects into a registered model, spreading
// requests across healthy replicas round-robin. On a transport error or
// 5xx the failing replica is quarantined with exponential backoff and the
// request retries on the next endpoint (assigns are idempotent); if every
// replica is down it falls back to the primary, then — as a last resort —
// to quarantined replicas, oldest quarantine first. Typed application
// errors (404 for a model the replica has not synced yet, 4xx validation
// failures) return immediately without failover.
func (m *MultiEndpoint) AssignObjects(ctx context.Context, modelID string, req AssignRequest) (*AssignResponse, error) {
	// One trace for the whole failover sequence: every attempt — replicas,
	// primary, desperation round — sends the same traceparent, so the
	// servers' request traces share one trace id and the hops a request
	// took through the tier are reconstructable from any node's /v1/traces.
	if ContextTraceparent(ctx) == "" {
		ctx = WithTraceparent(ctx, NewTraceparent())
	}
	healthy, quarantined := m.pickOrder()
	var lastErr error
	for _, ep := range healthy {
		out, err := ep.c.AssignObjects(ctx, modelID, req)
		if err == nil {
			ep.recordSuccess()
			return out, nil
		}
		if ctx.Err() != nil || !endpointUnavailable(err) {
			return nil, err
		}
		ep.recordFailure(m.quarantineBase, m.quarantineMax, m.now())
		lastErr = err
	}
	out, err := m.primary.AssignObjects(ctx, modelID, req)
	if err == nil {
		return out, nil
	}
	if ctx.Err() != nil || !endpointUnavailable(err) {
		return nil, err
	}
	lastErr = err
	// Last resort: a fully-quarantined tier with a dead primary still gets
	// one desperation round — a replica that failed seconds ago may be back.
	for _, ep := range quarantined {
		out, err := ep.c.AssignObjects(ctx, modelID, req)
		if err == nil {
			ep.recordSuccess()
			return out, nil
		}
		if ctx.Err() != nil || !endpointUnavailable(err) {
			return nil, err
		}
		ep.recordFailure(m.quarantineBase, m.quarantineMax, m.now())
		lastErr = err
	}
	return nil, lastErr
}

// pickOrder snapshots the replicas as (healthy in round-robin order,
// quarantined oldest-expiry first) and advances the rotation cursor.
func (m *MultiEndpoint) pickOrder() (healthy, quarantined []*endpoint) {
	if len(m.replicas) == 0 {
		return nil, nil
	}
	now := m.now()
	m.mu.Lock()
	start := m.next
	m.next = (m.next + 1) % len(m.replicas)
	m.mu.Unlock()
	for i := 0; i < len(m.replicas); i++ {
		ep := m.replicas[(start+i)%len(m.replicas)]
		ep.mu.Lock()
		held := ep.until.After(now)
		ep.mu.Unlock()
		if held {
			quarantined = append(quarantined, ep)
		} else {
			healthy = append(healthy, ep)
		}
	}
	// Oldest quarantine expiry first: the endpoint closest to re-entering
	// rotation is the likeliest to have recovered.
	for i := 1; i < len(quarantined); i++ {
		for j := i; j > 0; j-- {
			a, b := quarantined[j-1], quarantined[j]
			a.mu.Lock()
			ua := a.until
			a.mu.Unlock()
			b.mu.Lock()
			ub := b.until
			b.mu.Unlock()
			if !ub.Before(ua) {
				break
			}
			quarantined[j-1], quarantined[j] = b, a
		}
	}
	return healthy, quarantined
}

// endpointUnavailable reports an error that indicts the endpoint rather
// than the request: a transport-level failure or any 5xx.
func endpointUnavailable(err error) bool {
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode >= 500
}

func (ep *endpoint) recordSuccess() {
	ep.mu.Lock()
	ep.failures = 0
	ep.until = time.Time{}
	ep.mu.Unlock()
}

func (ep *endpoint) recordFailure(base, max time.Duration, now time.Time) {
	ep.mu.Lock()
	ep.failures++
	hold := base
	for i := 1; i < ep.failures && hold < max; i++ {
		hold *= 2
	}
	if hold > max {
		hold = max
	}
	ep.until = now.Add(hold)
	ep.mu.Unlock()
}
