package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"genclus/client"
	"genclus/internal/server"
)

// fitModelViaSDK uploads the test network, fits it, and returns the
// registered model id plus the fitted result.
func fitModelViaSDK(t *testing.T, c *client.Client) (string, *client.Result) {
	t.Helper()
	ctx := context.Background()
	net, _ := testNetwork(t, 12)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(1)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitForResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.ModelID == "" {
		t.Fatal("finished job has no model id")
	}
	return status.ModelID, res
}

// TestSDKAssignObjects drives online inference through the SDK: fold a new
// object in by links, by partial text, and by both, and check the
// assignments and the healthz assign counters.
func TestSDKAssignObjects(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1})
	ctx := context.Background()
	modelID, res := fitModelViaSDK(t, c)

	// Topic-0 anchor object for links, topic-0 vocabulary for terms.
	anchor := res.Objects[0].ID
	resp, err := c.AssignObjects(ctx, modelID, client.AssignRequest{
		TopK: 2,
		Objects: []client.AssignObject{
			{ID: "new-linked", Links: []client.AssignLink{{Relation: "cites", To: anchor, Weight: 1}}},
			{ID: "new-texted", Terms: map[string][]client.AssignTermCount{"text": {{Term: 0, Count: 2}, {Term: 3, Count: 1}}}},
			{ID: "new-both", Links: []client.AssignLink{{Relation: "cites", To: anchor, Weight: 1}},
				Terms: map[string][]client.AssignTermCount{"text": {{Term: 1, Count: 1}}}},
			{ID: "new-empty"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelID != modelID || resp.K != 2 || len(resp.Assignments) != 4 {
		t.Fatalf("assign response header: %+v", resp)
	}
	wantCluster := res.Objects[0].Cluster
	for _, a := range resp.Assignments[:3] {
		if a.Cluster != wantCluster {
			t.Errorf("%s assigned to cluster %d, want %d (theta %v)", a.ID, a.Cluster, wantCluster, a.Theta)
		}
		if len(a.Top) != 2 || a.Top[0].Cluster != a.Cluster {
			t.Errorf("%s top list %v inconsistent", a.ID, a.Top)
		}
		if a.FoldInIters < 1 {
			t.Errorf("%s fold_in_iters = %d", a.ID, a.FoldInIters)
		}
	}
	empty := resp.Assignments[3]
	if empty.Theta[0] != 0.5 || empty.Theta[1] != 0.5 {
		t.Errorf("information-free object posterior %v, want uniform", empty.Theta)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Assign.Requests != 1 || h.Assign.Objects != 4 || h.Assign.EngineCacheMisses != 1 {
		t.Fatalf("healthz assign stats %+v", h.Assign)
	}
}

// TestSDKAssignErrors checks the typed error surface: unknown model is a
// 404 *APIError, a bad query a 400, an oversized batch a 413.
func TestSDKAssignErrors(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1, MaxAssignBatch: 2})
	ctx := context.Background()
	modelID, _ := fitModelViaSDK(t, c)

	if _, err := c.AssignObjects(ctx, "mdl_nope", client.AssignRequest{Objects: []client.AssignObject{{}}}); !client.IsNotFound(err) {
		t.Fatalf("unknown model: %v, want 404", err)
	}
	_, err := c.AssignObjects(ctx, modelID, client.AssignRequest{
		Objects: []client.AssignObject{{Links: []client.AssignLink{{Relation: "ghost", To: "doc0_0000", Weight: 1}}}},
	})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown relation: %v, want 400", err)
	}
	_, err = c.AssignObjects(ctx, modelID, client.AssignRequest{Objects: []client.AssignObject{{}, {}, {}}})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %v, want 413", err)
	}
}

// TestSDKAssignConcurrent exercises the acceptance criterion that
// concurrent SDK assign calls against one model are race- and leak-clean:
// many goroutines assign through the micro-batching window and every
// response routes back to its own request.
func TestSDKAssignConcurrent(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1, AssignBatchWindow: 2 * time.Millisecond})
	ctx := context.Background()
	modelID, res := fitModelViaSDK(t, c)

	const workers, rounds = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("q-%d-%d", w, r)
				anchor := res.Objects[(w*rounds+r)%len(res.Objects)].ID
				resp, err := c.AssignObjects(ctx, modelID, client.AssignRequest{
					Objects: []client.AssignObject{{ID: id, Links: []client.AssignLink{{Relation: "cites", To: anchor, Weight: 1}}}},
				})
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				if len(resp.Assignments) != 1 || resp.Assignments[0].ID != id {
					t.Errorf("%s: routed wrong assignment %+v", id, resp.Assignments)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Assign.Requests != workers*rounds {
		t.Fatalf("assign requests = %d, want %d", h.Assign.Requests, workers*rounds)
	}
	if h.Assign.EnginePasses > h.Assign.Requests {
		t.Fatalf("more passes (%d) than requests (%d)", h.Assign.EnginePasses, h.Assign.Requests)
	}
}
