package client_test

import (
	"errors"
	"testing"
	"time"

	"genclus/client"
	"genclus/internal/server"
)

// TestSDKMutateAndSupervise drives the streaming-mutation surface
// exclusively through the SDK: all four mutation calls advance the view
// generation, the supervisor's auto-refit publishes a model the client can
// assign against, and mutation errors surface as typed *APIError values.
func TestSDKMutateAndSupervise(t *testing.T) {
	c := testDaemon(t, server.Config{
		Workers:                  1,
		SupervisorMaxPending:     4,
		SupervisorDriftThreshold: -1,
		SupervisorInterval:       10 * time.Millisecond,
	})
	ctx := t.Context()

	net, _ := testNetwork(t, 15)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(11)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitForResult(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	// A network that has never been mutated reports an idle supervisor.
	st, err := c.SupervisorStatus(ctx, info.ID)
	if err != nil || st.Active || st.Generation != 0 {
		t.Fatalf("pre-mutation supervisor status: %+v, %v", st, err)
	}

	// Generation 1: two new papers citing into the existing literature.
	res, err := c.AddObjects(ctx, info.ID,
		[]client.NewObject{
			{ID: "late0", Type: "doc", Terms: map[string][]client.TermCount{"text": {{Term: 1, Count: 3}}}},
			{ID: "late1", Type: "doc"},
		},
		[]client.Edge{
			{From: "late0", To: "doc0_0000", Relation: "cites", Weight: 1},
			{From: "late1", To: "doc1_0000", Relation: "cites", Weight: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.Objects != info.Objects+2 || res.DeltaLogDepth != 1 {
		t.Fatalf("AddObjects result: %+v", res)
	}

	// Generation 2: a link between the newcomers.
	res, err = c.AddEdges(ctx, info.ID, []client.Edge{{From: "late0", To: "late1", Relation: "cites", Weight: 2}})
	if err != nil || res.Generation != 2 {
		t.Fatalf("AddEdges result: %+v, %v", res, err)
	}

	// Generation 3: remove it again.
	res, err = c.RemoveEdges(ctx, info.ID, []client.EdgeRef{{From: "late0", To: "late1", Relation: "cites"}})
	if err != nil || res.Generation != 3 || res.Links != info.Links+2 {
		t.Fatalf("RemoveEdges result: %+v, %v", res, err)
	}

	// Generation 4: replace one observation, clear another — this fourth
	// mutation reaches SupervisorMaxPending and triggers the auto-refit.
	res, err = c.PatchAttributes(ctx, info.ID, []client.AttributePatch{
		{ID: "late0", Terms: map[string][]client.TermCount{"text": {{Term: 2, Count: 5}}}},
		{ID: "late1", Terms: map[string][]client.TermCount{"text": {}}},
	})
	if err != nil || res.Generation != 4 {
		t.Fatalf("PatchAttributes result: %+v, %v", res, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err = c.SupervisorStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.RefitsSucceeded >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-refit never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !st.Active || st.LastModelID == "" || st.LastRefitGeneration != 4 {
		t.Fatalf("supervisor status after auto-refit: %+v", st)
	}

	// The rolled-forward model folds in a fresh object immediately.
	ar, err := c.AssignObjects(ctx, st.LastModelID, client.AssignRequest{
		Objects: []client.AssignObject{{
			ID:    "q0",
			Links: []client.AssignLink{{Relation: "cites", To: "late0", Weight: 1}},
		}},
	})
	if err != nil || len(ar.Assignments) != 1 {
		t.Fatalf("assign against auto-refit model: %+v, %v", ar, err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Mutation.Mutations != 4 || h.Mutation.Supervisors != 1 || h.Mutation.RefitsSucceeded < 1 {
		t.Fatalf("health mutation block: %+v", h.Mutation)
	}

	// Typed failures: unknown network is a 404, a contradictory mutation a
	// 400 — and a failed mutation publishes no generation.
	if _, err := c.AddEdges(ctx, "net_nope", []client.Edge{{From: "a", To: "b", Relation: "r", Weight: 1}}); !client.IsNotFound(err) {
		t.Fatalf("mutation against unknown network: %v", err)
	}
	var ae *client.APIError
	if _, err := c.RemoveEdges(ctx, info.ID, []client.EdgeRef{{From: "late0", To: "late1", Relation: "cites"}}); !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("removing an absent edge: %v", err)
	}
	if st, err = c.SupervisorStatus(ctx, info.ID); err != nil || st.Generation != 4 {
		t.Fatalf("generation after failed mutation: %+v, %v", st, err)
	}
}
