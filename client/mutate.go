package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// Edge is one link to add to a stored network: object IDs, a relation name
// (which may be new to the network) and a positive finite weight. The
// field tags match the network document's link shape.
type Edge struct {
	From     string  `json:"from"` // source object ID
	To       string  `json:"to"`   // target object ID
	Relation string  `json:"rel"`  // relation name
	Weight   float64 `json:"w"`    // positive finite link weight
}

// EdgeRef names an edge to remove by its (from, relation, to) triple.
// Removal deletes every parallel edge matching the triple; a triple that
// matches no edge is a 400 — removal of the absent is a contradiction, not
// a no-op.
type EdgeRef struct {
	From     string `json:"from"` // source object ID
	To       string `json:"to"`   // target object ID
	Relation string `json:"rel"`  // relation name
}

// TermCount is one sparse categorical observation entry, in the network
// document's compact {"t":term,"c":count} shape.
type TermCount struct {
	Term  int     `json:"t"` // term index within the attribute's vocabulary
	Count float64 `json:"c"` // positive finite count
}

// NewObject is one object to add to a stored network: an ID new to the
// network, a type, and optional attribute observations keyed by declared
// attribute name. Objects without observations are the paper's
// incomplete-attribute case and cluster through their links.
type NewObject struct {
	ID      string                 `json:"id"`                // object ID, unique within the network
	Type    string                 `json:"type"`              // object type (τ)
	Terms   map[string][]TermCount `json:"terms,omitempty"`   // categorical attribute name → term counts
	Numeric map[string][]float64   `json:"numeric,omitempty"` // numeric attribute name → observations
}

// AttributePatch replaces one existing object's observations for the named
// attributes. An attribute present with an empty list clears the object's
// observation (making the attribute incomplete for that object);
// attributes not named are untouched.
type AttributePatch struct {
	ID      string                 `json:"id"`                // existing object ID
	Terms   map[string][]TermCount `json:"terms,omitempty"`   // categorical attribute name → replacement term counts
	Numeric map[string][]float64   `json:"numeric,omitempty"` // numeric attribute name → replacement observations
}

// MutationResult reports one applied mutation: the network's new view
// generation (monotonic from 0 at upload, +1 per mutation) and its size
// after the mutation. In-flight fits and assigns keep the generation they
// started with; only work submitted after the mutation sees the new view.
type MutationResult struct {
	NetworkID  string `json:"network_id"` // the mutated network
	Generation int    `json:"generation"` // view generation this mutation produced
	Objects    int    `json:"objects"`    // |V| after the mutation
	Links      int    `json:"links"`      // |E| after the mutation
	// DeltaLogDepth is the number of mutations in the network's crash-safe
	// delta log (replayed on restart; purged when the network expires).
	DeltaLogDepth int `json:"delta_log_depth"`
}

// SupervisorStatus is the continuous-clustering supervisor's report for
// one mutated network (GET /v1/networks/{id}/supervisor): where the live
// view is, how far the last refit lags it, the current drift estimate, and
// the supervisor's refit counters.
type SupervisorStatus struct {
	NetworkID string `json:"network_id"` // the supervised network
	// Active reports whether a supervisor goroutine is watching the
	// network (one starts with its first mutation and stops when the
	// network expires).
	Active     bool `json:"active"`
	Generation int  `json:"generation"` // current live view generation
	// DeltaLogDepth is the number of logged mutations awaiting the next
	// snapshot-equivalent refit.
	DeltaLogDepth int `json:"delta_log_depth"`
	// LastRefitGeneration is the view generation of the newest completed
	// (or abandoned) auto-refit; PendingMutations = Generation − this.
	LastRefitGeneration int `json:"last_refit_generation"`
	PendingMutations    int `json:"pending_mutations"` // mutations not yet covered by a refit
	// DriftScore is the latest fold-in drift estimate in [0, 1]: the mean
	// total-variation distance between the current model's posterior for a
	// sample of mutated objects and their pre-mutation posteriors (objects
	// the model has never seen score 1).
	DriftScore float64 `json:"drift_score"`
	// RefitJobID is the in-flight auto-refit job, if one is running.
	RefitJobID string `json:"refit_job_id,omitempty"`
	// LastModelID is the model published by the newest successful
	// auto-refit — the handle /assign callers should roll forward to.
	LastModelID     string `json:"last_model_id,omitempty"`
	RefitsTriggered int64  `json:"refits_triggered"` // auto-refits scheduled
	RefitsSucceeded int64  `json:"refits_succeeded"` // auto-refits that published a model
	RefitsFailed    int64  `json:"refits_failed"`    // auto-refits that errored or were abandoned
}

// MutationStats are the server's streaming-mutation counters from
// /healthz: mutation volume, aggregate delta-log depth, live supervisors,
// the worst current drift score, and fleet-wide auto-refit counters.
type MutationStats struct {
	Mutations       int64   `json:"mutations"`        // mutations applied since start
	DeltaLogDepth   int64   `json:"delta_log_depth"`  // logged mutations across all networks
	Supervisors     int64   `json:"supervisors"`      // live supervisor goroutines
	DriftScore      float64 `json:"drift_score"`      // max drift score across supervised networks
	RefitsTriggered int64   `json:"refits_triggered"` // auto-refits scheduled
	RefitsSucceeded int64   `json:"refits_succeeded"` // auto-refits that published a model
	RefitsFailed    int64   `json:"refits_failed"`    // auto-refits that errored or were abandoned
}

// edgesMutation is the POST /v1/networks/{id}/edges body.
type edgesMutation struct {
	Add    []Edge    `json:"add,omitempty"`
	Remove []EdgeRef `json:"remove,omitempty"`
}

// objectsMutation is the POST /v1/networks/{id}/objects body.
type objectsMutation struct {
	Objects []NewObject `json:"objects"`
	Links   []Edge      `json:"links,omitempty"`
}

// attributesMutation is the PATCH /v1/networks/{id}/attributes body.
type attributesMutation struct {
	Set []AttributePatch `json:"set"`
}

// AddEdges adds links to a stored network (POST /v1/networks/{id}/edges),
// publishing a new view generation. Relations may be new to the network;
// both endpoints must exist. Like SubmitJob, mutations are NOT retried: a
// retry after an ambiguous failure could apply the mutation twice (adds
// are not idempotent — a repeated add duplicates parallel edges).
func (c *Client) AddEdges(ctx context.Context, networkID string, edges []Edge) (*MutationResult, error) {
	return c.mutate(ctx, http.MethodPost, networkID, "edges", edgesMutation{Add: edges})
}

// RemoveEdges removes edges from a stored network by (from, relation, to)
// triple (POST /v1/networks/{id}/edges), deleting every parallel edge
// matching each triple. A triple matching no edge fails the whole mutation
// with a 400 and no new generation is published. Not retried, like all
// mutations.
func (c *Client) RemoveEdges(ctx context.Context, networkID string, refs []EdgeRef) (*MutationResult, error) {
	return c.mutate(ctx, http.MethodPost, networkID, "edges", edgesMutation{Remove: refs})
}

// AddObjects adds objects — optionally with attribute observations and
// links touching them — to a stored network (POST
// /v1/networks/{id}/objects). Links may connect new objects to existing
// ones or to each other. Object IDs must be new to the network. Not
// retried, like all mutations.
func (c *Client) AddObjects(ctx context.Context, networkID string, objects []NewObject, links []Edge) (*MutationResult, error) {
	return c.mutate(ctx, http.MethodPost, networkID, "objects", objectsMutation{Objects: objects, Links: links})
}

// PatchAttributes replaces attribute observations on existing objects
// (PATCH /v1/networks/{id}/attributes). An attribute set to an empty list
// is cleared — the object becomes incomplete in that attribute and its
// memberships rest on links and its remaining observations. Not retried,
// like all mutations.
func (c *Client) PatchAttributes(ctx context.Context, networkID string, patches []AttributePatch) (*MutationResult, error) {
	return c.mutate(ctx, http.MethodPatch, networkID, "attributes", attributesMutation{Set: patches})
}

// mutate issues one mutation request and decodes the applied-generation
// response. Validation failures come back as *APIError: 400 for malformed
// or contradictory mutations, 413 for mutations that would push the
// network past the server's limits, 404 for an unknown network.
func (c *Client) mutate(ctx context.Context, method, networkID, surface string, doc any) (*MutationResult, error) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("client: encode mutation: %w", err)
	}
	var out MutationResult
	if err := c.do(ctx, method, "/v1/networks/"+networkID+"/"+surface, payload, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SupervisorStatus fetches the continuous-clustering supervisor's report
// for a mutated network (GET /v1/networks/{id}/supervisor). A network that
// has never been mutated answers Active false with zero counters. The
// call is read-only and retried on transient failures.
func (c *Client) SupervisorStatus(ctx context.Context, networkID string) (*SupervisorStatus, error) {
	var out SupervisorStatus
	if err := c.do(ctx, http.MethodGet, "/v1/networks/"+networkID+"/supervisor", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
