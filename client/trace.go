package client

import (
	"context"

	"genclus/internal/trace"
)

// Distributed-trace propagation for the SDK: every request carries a W3C
// traceparent header. Callers that already have a trace (their own
// middleware, another service) attach it with WithTraceparent; otherwise
// the SDK mints one per logical call — all retry attempts of that call,
// and all failover attempts of a MultiEndpoint call, share it. The trace
// id (the first 32-hex field) is what the server logs as the request id,
// returns in error bodies as request_id, and serves on GET /v1/traces/{id}.

// traceparentKey carries the caller-supplied traceparent through contexts.
type traceparentKey struct{}

// WithTraceparent returns a context whose requests all propagate the given
// W3C traceparent header value, joining the caller's existing trace. A
// malformed value is ignored (the SDK mints fresh ones as usual) — trace
// plumbing must never fail a request.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	if _, ok := trace.Parse(traceparent); !ok {
		return ctx
	}
	return context.WithValue(ctx, traceparentKey{}, traceparent)
}

// NewTraceparent mints a fresh W3C traceparent value ("00-<32 hex trace
// id>-<16 hex span id>-01") for callers that want to know their trace id
// up front: pass it through WithTraceparent, then query the server's
// /v1/traces/{id} with the trace id field after the calls land.
func NewTraceparent() string {
	return trace.NewSpanContext().Traceparent()
}

// ContextTraceparent returns the traceparent ctx carries ("" if none was
// attached with WithTraceparent).
func ContextTraceparent(ctx context.Context) string {
	tp, _ := ctx.Value(traceparentKey{}).(string)
	return tp
}

// TraceIDOf extracts the 32-hex trace id from a traceparent value — the
// handle the server's request_id fields and /v1/traces/{id} use. Empty on
// a malformed value.
func TraceIDOf(traceparent string) string {
	sc, ok := trace.Parse(traceparent)
	if !ok {
		return ""
	}
	return sc.TraceID.String()
}

// callTraceparent picks the traceparent for one logical API call: the
// caller's, or a freshly minted one. doRaw calls it once per call — before
// the retry loop — so every retry attempt shares a single trace.
func callTraceparent(ctx context.Context) string {
	if tp := ContextTraceparent(ctx); tp != "" {
		return tp
	}
	return NewTraceparent()
}
