package client

import (
	"context"
	"net/http"
)

// ReplicationStats mirrors the server's replication sync-state block (on
// /healthz and inside ReplicationStatus). On a primary every field is zero
// and Active is false.
type ReplicationStats struct {
	Active  bool   `json:"active"`            // true in replica mode
	Primary string `json:"primary,omitempty"` // followed primary base URL
	// LagSeconds is the staleness bound: seconds since the replica's last
	// successful sync pass (since startup before the first one).
	LagSeconds float64 `json:"lag_seconds"`
	// Syncs counts completed sync passes.
	Syncs uint64 `json:"syncs"`
	// SyncErrors counts failed sync passes.
	SyncErrors uint64 `json:"sync_errors"`
	// ModelsSynced counts models the sync loop installed.
	ModelsSynced uint64 `json:"models_synced"`
	// ModelsDeleted counts models removed because the primary dropped them.
	ModelsDeleted uint64 `json:"models_deleted"`
	// ConsecutiveFailures is the current failure streak driving the sync
	// loop's backoff.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastSync is the RFC 3339 time of the last successful pass.
	LastSync string `json:"last_sync,omitempty"`
	// LastError is the message of the last failed pass ("" after a
	// success).
	LastError string `json:"last_error,omitempty"`
}

// ReplicationStatus is the GET /v1/replication body: the node's role, its
// local registry size, and (replicas only) the live sync state.
type ReplicationStatus struct {
	Mode   string           `json:"mode"`   // "primary" or "replica"
	Models int              `json:"models"` // local registry size
	Sync   ReplicationStats `json:"sync"`   // sync state (zero on a primary)
}

// Replication fetches the node's replication role and sync state. Use it
// to tell a primary from a replica, and to watch a replica's lag and error
// counters converge.
func (c *Client) Replication(ctx context.Context) (*ReplicationStatus, error) {
	var out ReplicationStatus
	if err := c.do(ctx, http.MethodGet, "/v1/replication", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
