package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genclus"
	"genclus/client"
	"genclus/internal/server"
)

// testNetwork builds a clearly two-clustered citation network through the
// public builder, returning it with ground truth by object ID.
func testNetwork(t *testing.T, perTopic int) (*genclus.Network, map[string]int) {
	t.Helper()
	b := genclus.NewBuilder()
	b.DeclareAttribute(genclus.AttrSpec{Name: "text", Kind: genclus.Categorical, VocabSize: 20})
	truth := make(map[string]int, 2*perTopic)
	ids := make([]string, 0, 2*perTopic)
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < perTopic; i++ {
			id := fmt.Sprintf("doc%d_%04d", topic, i)
			ids = append(ids, id)
			truth[id] = topic
			b.AddObject(id, "doc")
			for w := 0; w < 8; w++ {
				b.AddTermCount(id, "text", topic*10+(i+w)%10, 1)
			}
		}
	}
	for topic := 0; topic < 2; topic++ {
		for i := 0; i < perTopic; i++ {
			from := ids[topic*perTopic+i]
			b.AddLink(from, ids[topic*perTopic+(i+1)%perTopic], "cites", 1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, truth
}

// testDaemon runs genclusd behind httptest and returns an SDK client bound
// to it. Everything in these tests talks to the daemon through the SDK
// only — no raw HTTP.
func testDaemon(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithPollInterval(5*time.Millisecond))
}

func intp(v int) *int       { return &v }
func int64p(v int64) *int64 { return &v }

func quickOpts(seed int64) *client.JobOptions {
	return &client.JobOptions{
		OuterIters: intp(3),
		EMIters:    intp(5),
		InitSeeds:  intp(2),
		Seed:       int64p(seed),
	}
}

// TestSDKEndToEnd is the integration flow of the acceptance criteria:
// upload → submit → stream-wait → result → warm-started follow-up →
// cancel, exclusively through the SDK.
func TestSDKEndToEnd(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 2})
	ctx := t.Context()

	net, truth := testNetwork(t, 30)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	if info.Objects != 60 || info.Links != 60 {
		t.Fatalf("upload reported %d objects, %d links", info.Objects, info.Links)
	}

	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(7), Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	if job.State.Terminal() {
		t.Fatalf("fresh job already terminal: %s", job.State)
	}

	res, err := c.WaitForResult(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 || len(res.Objects) != 60 {
		t.Fatalf("result shape: K=%d objects=%d", res.K, len(res.Objects))
	}
	if res.Metrics == nil || res.Metrics.NMI < 0.8 {
		t.Fatalf("metrics on a trivially separable network: %+v", res.Metrics)
	}
	if res.EMIterations == 0 {
		t.Error("result reports zero EM iterations")
	}

	status, err := c.JobStatus(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != client.StateDone {
		t.Fatalf("status after wait: %s", status.State)
	}

	// Warm-started follow-up through the SDK: K inherited, far less work,
	// identical clusters.
	warmJob, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, WarmStartFrom: job.ID})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.WaitForResult(ctx, warmJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warm.K != 2 {
		t.Fatalf("warm job did not inherit K: %d", warm.K)
	}
	if warm.EMIterations >= res.EMIterations {
		t.Errorf("warm job EM iterations %d ≥ cold %d", warm.EMIterations, res.EMIterations)
	}
	for v := range res.Objects {
		if warm.Objects[v].Cluster != res.Objects[v].Cluster {
			t.Fatalf("object %s relabeled by warm start", res.Objects[v].ID)
		}
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Jobs["done"] < 2 {
		t.Fatalf("health: %+v", health)
	}

	// Remote→local rehydration: the fetched result seeds a local Refit.
	local, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	refit, err := local.Refit(net, genclus.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	labels := refit.HardLabels()
	for _, o := range res.Objects {
		v, ok := net.IndexOf(o.ID)
		if !ok {
			t.Fatalf("result object %q not in source network", o.ID)
		}
		if labels[v] != o.Cluster {
			t.Fatalf("local refit relabeled %s: %d → %d", o.ID, o.Cluster, labels[v])
		}
	}
}

// TestSDKStreamEvents watches a queued-then-running job through the event
// stream and requires the documented sequence.
func TestSDKStreamEvents(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1})
	ctx := t.Context()

	net, _ := testNetwork(t, 30)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	// Blocker pins the single worker so the watched job is still queued
	// when the stream attaches.
	blocker, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: intp(1_000_000), EMIters: intp(50), InitSeeds: intp(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(3)})
	if err != nil {
		t.Fatal(err)
	}

	var sawProgress atomic.Bool
	var first, last client.Event
	done := make(chan error, 1)
	go func() {
		n := 0
		done <- c.StreamEvents(ctx, job.ID, func(ev client.Event) error {
			if n == 0 {
				first = ev
			}
			n++
			last = ev
			if ev.Type == "progress" {
				sawProgress.Store(true)
			}
			return nil
		})
	}()
	// Give the stream a moment to attach, then release the worker.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.CancelJob(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("stream: %v", err)
	}
	if first.Job == nil {
		t.Fatal("first event is not a state event")
	}
	if !sawProgress.Load() {
		t.Error("no progress events observed")
	}
	if last.Job == nil || last.Job.State != client.StateDone {
		t.Fatalf("last event: %+v", last)
	}
}

// TestSDKCancelAndErrors covers cancellation and the typed error surface.
func TestSDKCancelAndErrors(t *testing.T) {
	c := testDaemon(t, server.Config{Workers: 1})
	ctx := t.Context()

	net, _ := testNetwork(t, 200)
	info, err := c.UploadNetwork(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: intp(1_000_000), EMIters: intp(50), InitSeeds: intp(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	_, err = c.WaitForResult(ctx, job.ID)
	var je *client.JobError
	if !errors.As(err, &je) || je.State != client.StateCancelled {
		t.Fatalf("wait on cancelled job: %v", err)
	}

	// Unknown IDs surface as typed 404s.
	if _, err := c.JobStatus(ctx, "job_missing"); !client.IsNotFound(err) {
		t.Fatalf("status of unknown job: %v", err)
	}
	if _, err := c.JobResult(ctx, "job_missing"); !client.IsNotFound(err) {
		t.Fatalf("result of unknown job: %v", err)
	}
	if err := c.StreamEvents(ctx, "job_missing", func(client.Event) error { return nil }); !client.IsNotFound(err) {
		t.Fatalf("events of unknown job: %v", err)
	}
	if _, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: "net_missing", K: 2}); !client.IsNotFound(err) {
		t.Fatalf("submit against unknown network: %v", err)
	}

	// Invalid options surface the server's message.
	var ae *client.APIError
	if _, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 1}); !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with K=1: %v", err)
	}

	// A result fetched before the job is done is a 409, not a retry loop.
	job2, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: &client.JobOptions{
		OuterIters: intp(1_000_000), EMIters: intp(50), InitSeeds: intp(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobResult(ctx, job2.ID); err == nil {
		t.Fatal("result of running job succeeded")
	} else if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: %v", err)
	}
	if _, err := c.CancelJob(ctx, job2.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSDKRetryTransient verifies the bounded retry/backoff path: a flaky
// upstream that 503s twice then succeeds is absorbed by an idempotent GET.
func TestSDKRetryTransient(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","workers":1}`)
	}))
	defer flaky.Close()

	c := client.New(flaky.URL, client.WithRetries(3, time.Millisecond))
	health, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health through flaky upstream: %v", err)
	}
	if health.Status != "ok" || calls.Load() != 3 {
		t.Fatalf("health=%+v after %d calls", health, calls.Load())
	}

	// With retries disabled the first 503 surfaces immediately.
	calls.Store(0)
	c0 := client.New(flaky.URL, client.WithRetries(0, 0))
	var ae *client.APIError
	if _, err := c0.Health(context.Background()); !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-retry health: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("no-retry client made %d calls", calls.Load())
	}
}

// TestSDKRetryExhaustedErrorContext pins the no-more-silent-retries
// contract: when every attempt fails, the returned error names the attempt
// count and the trace id the attempts shared, every attempt carried the
// same caller-supplied traceparent, and errors.As still unwraps the typed
// APIError with the server's request_id.
func TestSDKRetryExhaustedErrorContext(t *testing.T) {
	var gotTraceparents []string
	var mu sync.Mutex
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotTraceparents = append(gotTraceparents, r.Header.Get("traceparent"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"down for repairs","request_id":"cafe"}`)
	}))
	defer down.Close()

	tp := client.NewTraceparent()
	ctx := client.WithTraceparent(context.Background(), tp)
	c := client.New(down.URL, client.WithRetries(2, time.Millisecond))
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("health against a dead upstream succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "after 3 attempts") {
		t.Errorf("exhausted-retry error %q does not report the attempt count", msg)
	}
	if !strings.Contains(msg, client.TraceIDOf(tp)) {
		t.Errorf("exhausted-retry error %q does not carry trace id %s", msg, client.TraceIDOf(tp))
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wrapped error lost the APIError: %v", err)
	}
	if ae.RequestID != "cafe" {
		t.Errorf("APIError.RequestID %q, want the server-reported id", ae.RequestID)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gotTraceparents) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(gotTraceparents))
	}
	for i, got := range gotTraceparents {
		if got != tp {
			t.Errorf("attempt %d sent traceparent %q, want the caller's %q", i, got, tp)
		}
	}
}

// TestSDKWaitPollingFallback forces the events endpoint to fail so
// WaitForResult exercises its polling fallback — both for an intermediary
// that cannot pass SSE through (502) and for a server that predates the
// /events endpoint entirely (404, which must be disambiguated from an
// unknown job).
func TestSDKWaitPollingFallback(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
	}{
		{"bad-gateway", http.StatusBadGateway},
		{"older-server", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := server.New(server.Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			inner := s.Handler()
			proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path != "/healthz" && len(r.URL.Path) > 7 && r.URL.Path[len(r.URL.Path)-7:] == "/events" {
					http.Error(w, `{"error":"no such route"}`, tc.status)
					return
				}
				inner.ServeHTTP(w, r)
			}))
			t.Cleanup(func() {
				proxy.Close()
				s.Close()
			})

			c := client.New(proxy.URL, client.WithPollInterval(5*time.Millisecond), client.WithRetries(0, 0))
			ctx := t.Context()
			net, _ := testNetwork(t, 30)
			info, err := c.UploadNetwork(ctx, net)
			if err != nil {
				t.Fatal(err)
			}
			job, err := c.SubmitJob(ctx, client.JobSpec{NetworkID: info.ID, K: 2, Options: quickOpts(11)})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.WaitForResult(ctx, job.ID)
			if err != nil {
				t.Fatalf("wait with broken stream: %v", err)
			}
			if len(res.Objects) != 60 {
				t.Fatalf("result objects: %d", len(res.Objects))
			}

			// A genuinely unknown job must still surface as 404, not hang
			// in the polling loop.
			if _, err := c.WaitForResult(ctx, "job_missing"); !client.IsNotFound(err) {
				t.Fatalf("wait on unknown job: %v", err)
			}
		})
	}
}
