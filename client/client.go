// Package client is the typed Go SDK for genclusd, the GenClus clustering
// service. It covers every /v1 endpoint — network upload, job submission
// (including warm starts from a prior job), status, result, cancellation,
// the live progress event stream — plus /healthz, with context support and
// bounded retry/backoff on transient failures.
//
//	c := client.New("http://localhost:8080")
//	net, _ := c.UploadNetwork(ctx, myNetwork)
//	job, _ := c.SubmitJob(ctx, client.JobSpec{NetworkID: net.ID, K: 4})
//	res, err := c.WaitForResult(ctx, job.ID)
//
// The /v1 surface is additive-only until a /v2, so a client built against
// this package keeps working as the server grows new fields (see README,
// "API compatibility").
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"genclus"
)

// Client talks to one genclusd base URL. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	baseURL      string
	hc           *http.Client
	maxRetries   int
	retryBase    time.Duration
	pollInterval time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient). Streaming endpoints need a client without a global
// Timeout; use per-call contexts for deadlines instead.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the retry budget for transient failures (network errors
// and 502/503/504 responses): up to n retries with exponential backoff
// starting at base. Defaults: 3 retries from 100ms. WithRetries(0, 0)
// disables retrying.
func WithRetries(n int, base time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = n
		c.retryBase = base
	}
}

// WithPollInterval sets the status poll cadence WaitForResult falls back to
// when the event stream is unavailable (default 250ms).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.pollInterval = d } }

// New returns a Client for the given base URL (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:      strings.TrimRight(baseURL, "/"),
		hc:           http.DefaultClient,
		maxRetries:   3,
		retryBase:    100 * time.Millisecond,
		pollInterval: 250 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the service, carrying the HTTP
// status, the server's error message, and — when the server set one — its
// machine-readable error code.
type APIError struct {
	StatusCode int    // HTTP status the service answered with
	Message    string // server-side error description
	Code       string // machine-readable condition (e.g. "job_evicted"), "" when unset
	// RequestID is the server-assigned id of the failed request — its trace
	// id. Quote it in bug reports; the server resolves it on GET
	// /v1/traces/{id} while the trace is retained. "" from servers (or
	// proxies) that sent none.
	RequestID string
	// RetryAfter is the server's Retry-After hint on 429 responses (zero
	// when the server sent none); retries honor it over the exponential
	// backoff when it is longer.
	RetryAfter time.Duration
}

// Error implements the error interface. The server's request id, when
// present, rides along so any logged error is traceable server-side.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("genclusd: %d: %s (request_id %s)", e.StatusCode, e.Message, e.RequestID)
	}
	return fmt.Sprintf("genclusd: %d: %s", e.StatusCode, e.Message)
}

// Is routes errors.Is through the server's error code, so a 404 on a
// TTL-evicted job matches ErrJobEvicted while a never-existed job does
// not, and a 429 from assign admission control matches ErrOverloaded. A
// gateway-ish status (502/503/504) matches ErrUnavailable — the same
// signal a connection-level failure raises — so failover logic needs only
// one errors.Is test, and a 403 in replica read-only mode matches
// ErrReadOnlyReplica.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrJobEvicted:
		return e.Code == codeJobEvicted
	case ErrOverloaded:
		return e.Code == codeOverloaded
	case ErrReadOnlyReplica:
		return e.Code == codeReadOnlyReplica
	case ErrUnavailable:
		switch e.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

// codeJobEvicted is the server's error code for 404s on TTL-evicted jobs.
const codeJobEvicted = "job_evicted"

// codeOverloaded is the server's error code on 429s from assign admission
// control.
const codeOverloaded = "overloaded"

// codeReadOnlyReplica is the server's error code on 403s from mutating
// routes of a read-only replica.
const codeReadOnlyReplica = "read_only_replica"

// ErrOverloaded reports that the service shed the request under load (a
// full assign queue, the global in-flight cap, or the configured rate
// limit) with a 429. Idempotent requests retry automatically, honoring the
// server's Retry-After; test with errors.Is — the concrete error remains
// an *APIError carrying the server message and RetryAfter.
var ErrOverloaded = errors.New("genclusd: overloaded, retry later")

// ErrReadOnlyReplica reports a write sent to a read-only replica (a
// genclusd running with -replica-of): the server answered 403 with code
// "read_only_replica". Route the request to the primary instead — a
// MultiEndpoint does so automatically. Test with errors.Is; the concrete
// error remains an *APIError with the full server message.
var ErrReadOnlyReplica = errors.New("genclusd: read-only replica, send writes to the primary")

// ErrJobEvicted reports that a job existed but was evicted after its TTL —
// its result is gone from the job table, though the fitted model usually
// survives in the /v1/models registry (finished fits register one
// automatically; see Job.ModelID). Test with errors.Is; the concrete error
// remains an *APIError with the full server message. The server's eviction
// tombstones are process-local, so after a restart an evicted job id
// answers a plain 404 — hold on to the model id, not the job id, across
// restarts.
var ErrJobEvicted = errors.New("genclusd: job evicted after TTL")

// ErrUnavailable reports that an endpoint could not serve the request at
// the transport or gateway level: the connection was refused, reset, or
// dropped before an HTTP status arrived, or the response was a 502/503/504.
// Test with errors.Is — the concrete error remains a *transportError
// wrapping the net-level cause, or an *APIError for gateway statuses. It is
// the signal MultiEndpoint failover keys off: an endpoint answering this
// way is quarantined and traffic moves on, while typed application errors
// (404, 409, 4xx) are returned as-is.
var ErrUnavailable = errors.New("genclusd: endpoint unavailable")

// transportError wraps a request that failed before any HTTP status
// arrived, so errors.Is(err, ErrUnavailable) holds while the underlying
// cause (including context cancellation) stays reachable via Unwrap.
type transportError struct {
	method, path string
	err          error
}

// Error implements the error interface.
func (e *transportError) Error() string {
	return fmt.Sprintf("client: %s %s: %v", e.method, e.path, e.err)
}

// Unwrap exposes the net-level cause for errors.Is/As chains.
func (e *transportError) Unwrap() error { return e.err }

// Is marks every transport-level failure as ErrUnavailable — except
// context cancellations, which are the caller's own doing, not the
// endpoint's.
func (e *transportError) Is(target error) bool {
	if target != ErrUnavailable {
		return false
	}
	return !errors.Is(e.err, context.Canceled) && !errors.Is(e.err, context.DeadlineExceeded)
}

// IsNotFound reports whether err is an APIError with status 404 — an
// unknown (or TTL-evicted) network, job, or model.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// JobState is a job's lifecycle state as reported by the service.
type JobState string

// Job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// NetworkInfo describes an uploaded network.
type NetworkInfo struct {
	ID         string   `json:"id"`         // server-side network id for job submissions
	Objects    int      `json:"objects"`    // |V|
	Links      int      `json:"links"`      // |E|
	Relations  []string `json:"relations"`  // relation names in dense-id order
	Attributes []string `json:"attributes"` // declared attribute names
}

// JobOptions overlays the paper-default fit options; nil fields keep the
// defaults. It mirrors the service's options object field for field.
type JobOptions struct {
	Attributes           []string `json:"attributes,omitempty"`            // attribute subset defining the clustering purpose (empty = all)
	OuterIters           *int     `json:"outer_iters,omitempty"`           // outer alternations between EM and strength learning
	EMIters              *int     `json:"em_iters,omitempty"`              // EM iterations per cluster-optimization step
	EMTol                *float64 `json:"em_tol,omitempty"`                // early-stop threshold on max |ΔΘ|
	OuterTol             *float64 `json:"outer_tol,omitempty"`             // early-stop threshold on max |Δγ|
	NewtonIters          *int     `json:"newton_iters,omitempty"`          // Newton iterations per strength-learning step
	PriorSigma           *float64 `json:"prior_sigma,omitempty"`           // σ of the Gaussian prior on γ
	Seed                 *int64   `json:"seed,omitempty"`                  // RNG seed; same seed ⇒ bitwise identical fit
	InitSeeds            *int     `json:"init_seeds,omitempty"`            // best-of-seeds restarts (>1 enables seeding)
	InitSeedSteps        *int     `json:"init_seed_steps,omitempty"`       // EM steps per candidate seed
	Parallelism          *int     `json:"parallelism,omitempty"`           // EM worker count (does not change results)
	LearnGamma           *bool    `json:"learn_gamma,omitempty"`           // false freezes γ at the initial vector
	InitialGamma         *float64 `json:"initial_gamma,omitempty"`         // uniform starting strength (0 means 1)
	SymmetricPropagation *bool    `json:"symmetric_propagation,omitempty"` // propagate along in-links too (ablation)
	Epsilon              *float64 `json:"epsilon,omitempty"`               // Θ floor, in (0, 1/K); also floors assign posteriors
	Precision            *string  `json:"precision,omitempty"`             // model storage precision: "float64" (default) or "float32"
}

// JobSpec is a fit submission. K is required unless WarmStartFrom names a
// finished job (or WarmStartFromModel a registered model), in which case K
// defaults to (and must match) that fit's K. Truth maps object IDs to
// ground-truth labels and enables NMI/ARI/purity on the result.
type JobSpec struct {
	NetworkID     string         `json:"network_id"`                // id from UploadNetwork
	K             int            `json:"k"`                         // number of clusters
	Options       *JobOptions    `json:"options,omitempty"`         // nil keeps every default
	Truth         map[string]int `json:"truth,omitempty"`           // object id → ground-truth label
	WarmStartFrom string         `json:"warm_start_from,omitempty"` // finished job id to warm-start from
	// WarmStartFromModel names a registry model to warm-start from instead
	// of a job — models never expire, so this is the handle for refitting
	// an evolved network against a snapshot across restarts and deploys.
	// Mutually exclusive with WarmStartFrom.
	WarmStartFromModel string `json:"warm_start_from_model,omitempty"`
}

// Progress is a fit progress report: completed outer iterations out of the
// configured budget (the fit may stop earlier on convergence).
type Progress struct {
	Outer        int     `json:"outer"`                   // completed outer iterations (0 = initialized)
	OuterTotal   int     `json:"outer_total"`             // configured outer-iteration budget
	Objective    float64 `json:"objective,omitempty"`     // objective after the reported iteration
	EMIterations int     `json:"em_iterations,omitempty"` // EM steps the iteration ran
}

// Job is a job's status.
type Job struct {
	ID        string    `json:"id"`                 // job id
	NetworkID string    `json:"network_id"`         // network the job fits
	State     JobState  `json:"state"`              // lifecycle state
	Progress  *Progress `json:"progress,omitempty"` // latest progress report, if any
	Error     string    `json:"error,omitempty"`    // failure reason (state "failed" only)
	ModelID   string    `json:"model_id,omitempty"` // registry model of the finished fit (state "done" only)
	// TraceID is the fit's 32-hex trace id: when the submission carried a
	// traceparent (WithTraceparent) it equals that trace's id, and GET
	// /v1/jobs/{id}/trace serves the fit's span timeline under it.
	TraceID  string `json:"trace_id,omitempty"`
	Created  string `json:"created"`            // RFC 3339 submission time
	Started  string `json:"started,omitempty"`  // RFC 3339 fit start time
	Finished string `json:"finished,omitempty"` // RFC 3339 terminal time
}

// ObjectResult is one clustered object: its hard assignment and soft
// membership row.
type ObjectResult struct {
	ID      string    `json:"id"`      // object id from the uploaded network
	Type    string    `json:"type"`    // object type (τ)
	Cluster int       `json:"cluster"` // argmax hard assignment
	Theta   []float64 `json:"theta"`   // soft membership row (sums to 1)
}

// Metrics are the eval scores against submitted ground truth.
type Metrics struct {
	NMI     float64 `json:"nmi"`             // normalized mutual information
	ARI     float64 `json:"ari"`             // adjusted Rand index
	Purity  float64 `json:"purity"`          // majority-class purity
	Labeled int     `json:"labeled_objects"` // objects the truth map covered
}

// Result is a finished job's fitted model.
type Result struct {
	ID              string             `json:"id"`                // job id
	K               int                `json:"k"`                 // number of clusters
	Objects         []ObjectResult     `json:"objects"`           // per-object assignments and memberships
	Gamma           map[string]float64 `json:"gamma"`             // relation name → learned strength γ(r)
	Objective       float64            `json:"objective"`         // final g₁ (Eq. 9)
	PseudoLL        float64            `json:"pseudo_ll"`         // final g′₂ (Eq. 14)
	EMIterations    int                `json:"em_iterations"`     // total EM iterations executed
	OuterIterations int                `json:"outer_iterations"`  // outer alternations actually run
	Metrics         *Metrics           `json:"metrics,omitempty"` // eval vs submitted truth, if any
}

// Model rebuilds a local genclus.Model from the fetched result, so a fit
// computed by the service can seed a local Model.Refit. The service result
// carries Θ (per object) and γ but not the fitted attribute component
// models, so a refit from the rebuilt model warm-starts memberships and
// strengths while re-initializing attribute models from the data — still a
// fraction of a cold start on a converged source fit.
func (r *Result) Model() (*genclus.Model, error) {
	theta := make([][]float64, len(r.Objects))
	ids := make([]string, len(r.Objects))
	for i, o := range r.Objects {
		theta[i] = o.Theta
		ids[i] = o.ID
	}
	res := &genclus.Result{
		K:               r.K,
		Theta:           theta,
		Gamma:           r.Gamma,
		Objective:       r.Objective,
		PseudoLL:        r.PseudoLL,
		EMIterations:    r.EMIterations,
		OuterIterations: r.OuterIterations,
	}
	return genclus.NewModel(res, ids)
}

// Health is the service's liveness report.
type Health struct {
	Status        string         `json:"status"`         // "ok" while serving
	UptimeSeconds float64        `json:"uptime_seconds"` // seconds since start
	Workers       int            `json:"workers"`        // fit worker pool size
	Networks      int            `json:"networks"`       // stored (non-evicted) networks
	Models        int            `json:"models"`         // registered models
	Jobs          map[string]int `json:"jobs"`           // job count per state
	// PersistFailures counts fits whose snapshot or record failed to reach
	// the server's data dir (served memory-only until restart); nonzero
	// means durability is degraded on the server.
	PersistFailures int64 `json:"persist_failures"`
	// Assign surfaces the server's online-inference counters: assign
	// request/object volume, micro-batching ratio, and engine cache
	// effectiveness.
	Assign AssignStats `json:"assign"`
	// Mutation surfaces the server's streaming-mutation counters: mutation
	// volume, delta-log depth, live supervisors, and auto-refit totals.
	Mutation MutationStats `json:"mutation"`
	// Replication surfaces replica-mode sync state (zero, with Active
	// false, on a primary).
	Replication ReplicationStats `json:"replication"`
}

// ModelInfo is one registry entry of the /v1/models API: identity and
// provenance of a fitted (or imported) model whose full state lives in the
// binary snapshot behind ExportModel.
type ModelInfo struct {
	ID            string `json:"id"`                       // model id
	K             int    `json:"k"`                        // number of clusters
	Objects       int    `json:"objects"`                  // Θ rows (clustered objects)
	JobID         string `json:"job_id,omitempty"`         // source job (fitted models only)
	NetworkID     string `json:"network_id,omitempty"`     // source network (fitted models only)
	Created       string `json:"created"`                  // RFC 3339 registration time
	Digest        string `json:"digest"`                   // hex SHA-256 of the snapshot bytes
	SizeBytes     int64  `json:"size_bytes"`               // snapshot length
	OptionsDigest string `json:"options_digest,omitempty"` // digest of the fit's scalar hyperparameters
	EMIterations  int    `json:"em_iterations"`            // EM work the source fit spent
	Precision     string `json:"precision"`                // model storage precision ("float64" or "float32")
}

// modelList is the GET /v1/models wire wrapper.
type modelList struct {
	Models []ModelInfo `json:"models"`
}

// UploadNetwork serializes and uploads a network, returning its server-side
// ID for job submissions.
func (c *Client) UploadNetwork(ctx context.Context, net *genclus.Network) (*NetworkInfo, error) {
	data, err := json.Marshal(net)
	if err != nil {
		return nil, fmt.Errorf("client: encode network: %w", err)
	}
	return c.UploadNetworkJSON(ctx, data)
}

// UploadNetworkJSON uploads an already-serialized network document (the
// format written by Network.SaveFile / cmd/datagen).
func (c *Client) UploadNetworkJSON(ctx context.Context, data []byte) (*NetworkInfo, error) {
	var out NetworkInfo
	// An upload is not idempotent from the server's perspective (each
	// attempt registers a new network), but retrying after a transient
	// failure only risks an orphaned upload that the TTL sweeper collects.
	if err := c.do(ctx, http.MethodPost, "/v1/networks", data, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob submits a fit. Submission is NOT retried: a retry after an
// ambiguous failure could double-schedule the fit. Callers who want
// resilience should check for the job by listing health or resubmit
// explicitly.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (*Job, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode job spec: %w", err)
	}
	var out Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", payload, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches a job's current state and progress.
func (c *Client) JobStatus(ctx context.Context, jobID string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's fitted model. The service answers 409
// while the job is still queued or running; use WaitForResult to block
// until it is done.
func (c *Client) JobResult(ctx context.Context, jobID string) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/result", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob cancels a queued or running job (idempotent: cancelling a
// terminal job is a no-op) and returns the resulting status.
func (c *Client) CancelJob(ctx context.Context, jobID string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the service's liveness and queue statistics.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListModels fetches the model registry, newest first. Every finished fit
// registers a model automatically (see Job.ModelID); imported snapshots
// join the same registry. Models never TTL-expire.
func (c *Client) ListModels(ctx context.Context) ([]ModelInfo, error) {
	var out modelList
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, true, &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// GetModel fetches one registry entry.
func (c *Client) GetModel(ctx context.Context, modelID string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/models/"+modelID, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteModel removes a model from the registry (and, on a persistent
// server, from disk).
func (c *Client) DeleteModel(ctx context.Context, modelID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+modelID, nil, true, nil)
}

// ExportModel downloads the model's binary snapshot — the portable form of
// a fitted model: import it into another genclusd (ImportModel), load it in
// the genclus CLI (-from-model), or decode it locally with
// genclus.DecodeModel to drive a local Refit. The bytes are deterministic
// for a given model; their SHA-256 is the registry entry's Digest.
func (c *Client) ExportModel(ctx context.Context, modelID string) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, "/v1/models/"+modelID+"/export", nil, "", true)
}

// ImportModel registers a binary model snapshot (bytes from ExportModel,
// genclus.EncodeModel, or the CLI's -save-model) and returns the new
// registry entry. The server only accepts canonical snapshot encodings, so
// a later ExportModel of the entry returns these exact bytes.
func (c *Client) ImportModel(ctx context.Context, data []byte) (*ModelInfo, error) {
	// Import is not retried: a retry after an ambiguous failure could
	// register the snapshot twice (same digest, two ids).
	body, err := c.doRaw(ctx, http.MethodPost, "/v1/models/import", data, "application/octet-stream", false)
	if err != nil {
		return nil, err
	}
	var out ModelInfo
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("client: decode import response: %w", err)
	}
	return &out, nil
}

// JobError reports a job that reached a terminal state other than done.
type JobError struct {
	JobID   string   // the job that terminated
	State   JobState // its terminal state (failed or cancelled)
	Message string   // server-side failure reason, if any
}

// Error implements the error interface.
func (e *JobError) Error() string {
	return fmt.Sprintf("genclusd: job %s %s: %s", e.JobID, e.State, e.Message)
}

// WaitForResult blocks until the job reaches a terminal state and returns
// its result. It consumes the live event stream when the server provides
// one and degrades to status polling otherwise; either way it returns as
// soon as ctx is cancelled. A failed or cancelled job surfaces as a
// *JobError.
func (c *Client) WaitForResult(ctx context.Context, jobID string) (*Result, error) {
	final, err := c.waitTerminal(ctx, jobID)
	if err != nil {
		return nil, err
	}
	if final.State != StateDone {
		return nil, &JobError{JobID: jobID, State: final.State, Message: final.Error}
	}
	return c.JobResult(ctx, jobID)
}

// waitTerminal blocks until the job's state is terminal, preferring the
// event stream over polling.
func (c *Client) waitTerminal(ctx context.Context, jobID string) (*Job, error) {
	var final *Job
	err := c.StreamEvents(ctx, jobID, func(ev Event) error {
		if ev.Job != nil && ev.Job.State.Terminal() {
			final = ev.Job
			return ErrStopStreaming
		}
		return nil
	})
	switch {
	case err == nil && final != nil:
		return final, nil
	case err == nil:
		// Stream ended without a terminal state (server closed early);
		// fall through to polling.
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return nil, err
	case IsNotFound(err):
		// Ambiguous: the job may be unknown, or the server may predate the
		// /events endpoint (the /v1 surface is additive-only, so both are
		// in-policy). One status request disambiguates.
		job, serr := c.JobStatus(ctx, jobID)
		if serr != nil {
			return nil, serr
		}
		if job.State.Terminal() {
			return job, nil
		}
	}
	// Polling fallback: the stream failed for a reason worth surviving
	// (proxy stripped streaming, connection dropped mid-fit, older server).
	for {
		job, err := c.JobStatus(ctx, jobID)
		if err != nil {
			return nil, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.pollInterval):
		}
	}
}

// do issues one JSON API request with bounded retries on transient
// failures, unmarshaling a 2xx body into out (when non-nil). Non-2xx
// responses become *APIError; only idempotent requests and transient
// statuses (502/503/504) are retried.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, out any) error {
	contentType := ""
	if body != nil {
		contentType = "application/json"
	}
	data, err := c.doRaw(ctx, method, path, body, contentType, idempotent)
	if err != nil {
		return err
	}
	if out == nil || len(data) == 0 {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// doRaw issues one request with bounded retries and returns the raw 2xx
// body — the byte-level transport shared by the JSON surface and the
// binary snapshot endpoints. The traceparent is chosen once, before the
// retry loop, so every attempt of one logical call shares a single trace;
// when retries are exhausted the final error says how many attempts were
// made and which trace id to look up, so retrying is never silent.
func (c *Client) doRaw(ctx context.Context, method, path string, body []byte, contentType string, idempotent bool) ([]byte, error) {
	tp := callTraceparent(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, err := c.once(ctx, method, path, body, contentType, tp)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !idempotent || attempt >= c.maxRetries || !transient(err) || ctx.Err() != nil {
			if attempt > 0 {
				// %w keeps errors.Is/As (APIError, ErrUnavailable, ...) intact.
				return nil, fmt.Errorf("%w (after %d attempts, trace %s)", lastErr, attempt+1, TraceIDOf(tp))
			}
			return nil, lastErr
		}
		// Cap the exponent so a generous retry budget cannot overflow
		// time.Duration into an instant-retry hot loop.
		shift := attempt
		if shift > 16 {
			shift = 16
		}
		wait := c.retryBase << shift
		// A shed request (429) carries the server's own backoff hint;
		// retrying sooner than it asks just gets shed again.
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// once issues a single HTTP request and maps non-2xx to *APIError.
func (c *Client) once(ctx context.Context, method, path string, body []byte, contentType, traceparent string) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &transportError{method: method, path: path, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// A connection severed mid-body (a crashed or restarted server) is
		// as much a transport failure as a refused dial; keep it typed so
		// retry and endpoint failover recognize it.
		return nil, &transportError{method: method, path: path, err: err}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, code, reqID := errorMessage(data)
		ae := &APIError{StatusCode: resp.StatusCode, Message: msg, Code: code, RequestID: reqID}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, ae
	}
	return data, nil
}

// errorMessage extracts the server's {"error", "code", "request_id"} body,
// falling back to the raw text for non-JSON errors (proxies, older
// servers).
func errorMessage(body []byte) (msg, code, reqID string) {
	var er struct {
		Error     string `json:"error"`
		Code      string `json:"code"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error, er.Code, er.RequestID
	}
	return strings.TrimSpace(string(body)), "", ""
}

// transient reports whether an error is worth retrying: anything
// ErrUnavailable covers (network-level failures and gateway-ish statuses,
// but never a context cancellation) plus 429s shed by admission control.
func transient(err error) bool {
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}
