// Package client is the typed Go SDK for genclusd, the GenClus clustering
// service. It covers every /v1 endpoint — network upload, job submission
// (including warm starts from a prior job), status, result, cancellation,
// the live progress event stream — plus /healthz, with context support and
// bounded retry/backoff on transient failures.
//
//	c := client.New("http://localhost:8080")
//	net, _ := c.UploadNetwork(ctx, myNetwork)
//	job, _ := c.SubmitJob(ctx, client.JobSpec{NetworkID: net.ID, K: 4})
//	res, err := c.WaitForResult(ctx, job.ID)
//
// The /v1 surface is additive-only until a /v2, so a client built against
// this package keeps working as the server grows new fields (see README,
// "API compatibility").
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"genclus"
)

// Client talks to one genclusd base URL. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	baseURL      string
	hc           *http.Client
	maxRetries   int
	retryBase    time.Duration
	pollInterval time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient). Streaming endpoints need a client without a global
// Timeout; use per-call contexts for deadlines instead.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the retry budget for transient failures (network errors
// and 502/503/504 responses): up to n retries with exponential backoff
// starting at base. Defaults: 3 retries from 100ms. WithRetries(0, 0)
// disables retrying.
func WithRetries(n int, base time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = n
		c.retryBase = base
	}
}

// WithPollInterval sets the status poll cadence WaitForResult falls back to
// when the event stream is unavailable (default 250ms).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.pollInterval = d } }

// New returns a Client for the given base URL (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:      strings.TrimRight(baseURL, "/"),
		hc:           http.DefaultClient,
		maxRetries:   3,
		retryBase:    100 * time.Millisecond,
		pollInterval: 250 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the service, carrying the HTTP status
// and the server's error message.
type APIError struct {
	StatusCode int    // HTTP status the service answered with
	Message    string // server-side error description
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("genclusd: %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is an APIError with status 404 — an
// unknown (or TTL-evicted) network or job.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// JobState is a job's lifecycle state as reported by the service.
type JobState string

// Job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// NetworkInfo describes an uploaded network.
type NetworkInfo struct {
	ID         string   `json:"id"`         // server-side network id for job submissions
	Objects    int      `json:"objects"`    // |V|
	Links      int      `json:"links"`      // |E|
	Relations  []string `json:"relations"`  // relation names in dense-id order
	Attributes []string `json:"attributes"` // declared attribute names
}

// JobOptions overlays the paper-default fit options; nil fields keep the
// defaults. It mirrors the service's options object field for field.
type JobOptions struct {
	Attributes           []string `json:"attributes,omitempty"`            // attribute subset defining the clustering purpose (empty = all)
	OuterIters           *int     `json:"outer_iters,omitempty"`           // outer alternations between EM and strength learning
	EMIters              *int     `json:"em_iters,omitempty"`              // EM iterations per cluster-optimization step
	EMTol                *float64 `json:"em_tol,omitempty"`                // early-stop threshold on max |ΔΘ|
	OuterTol             *float64 `json:"outer_tol,omitempty"`             // early-stop threshold on max |Δγ|
	NewtonIters          *int     `json:"newton_iters,omitempty"`          // Newton iterations per strength-learning step
	PriorSigma           *float64 `json:"prior_sigma,omitempty"`           // σ of the Gaussian prior on γ
	Seed                 *int64   `json:"seed,omitempty"`                  // RNG seed; same seed ⇒ bitwise identical fit
	InitSeeds            *int     `json:"init_seeds,omitempty"`            // best-of-seeds restarts (>1 enables seeding)
	InitSeedSteps        *int     `json:"init_seed_steps,omitempty"`       // EM steps per candidate seed
	Parallelism          *int     `json:"parallelism,omitempty"`           // EM worker count (does not change results)
	LearnGamma           *bool    `json:"learn_gamma,omitempty"`           // false freezes γ at the initial vector
	InitialGamma         *float64 `json:"initial_gamma,omitempty"`         // uniform starting strength (0 means 1)
	SymmetricPropagation *bool    `json:"symmetric_propagation,omitempty"` // propagate along in-links too (ablation)
}

// JobSpec is a fit submission. K is required unless WarmStartFrom names a
// finished job, in which case K defaults to (and must match) that fit's K.
// Truth maps object IDs to ground-truth labels and enables NMI/ARI/purity
// on the result.
type JobSpec struct {
	NetworkID     string         `json:"network_id"`                // id from UploadNetwork
	K             int            `json:"k"`                         // number of clusters
	Options       *JobOptions    `json:"options,omitempty"`         // nil keeps every default
	Truth         map[string]int `json:"truth,omitempty"`           // object id → ground-truth label
	WarmStartFrom string         `json:"warm_start_from,omitempty"` // finished job id to warm-start from
}

// Progress is a fit progress report: completed outer iterations out of the
// configured budget (the fit may stop earlier on convergence).
type Progress struct {
	Outer      int `json:"outer"`       // completed outer iterations (0 = initialized)
	OuterTotal int `json:"outer_total"` // configured outer-iteration budget
}

// Job is a job's status.
type Job struct {
	ID        string    `json:"id"`                 // job id
	NetworkID string    `json:"network_id"`         // network the job fits
	State     JobState  `json:"state"`              // lifecycle state
	Progress  *Progress `json:"progress,omitempty"` // latest progress report, if any
	Error     string    `json:"error,omitempty"`    // failure reason (state "failed" only)
	Created   string    `json:"created"`            // RFC 3339 submission time
	Started   string    `json:"started,omitempty"`  // RFC 3339 fit start time
	Finished  string    `json:"finished,omitempty"` // RFC 3339 terminal time
}

// ObjectResult is one clustered object: its hard assignment and soft
// membership row.
type ObjectResult struct {
	ID      string    `json:"id"`      // object id from the uploaded network
	Type    string    `json:"type"`    // object type (τ)
	Cluster int       `json:"cluster"` // argmax hard assignment
	Theta   []float64 `json:"theta"`   // soft membership row (sums to 1)
}

// Metrics are the eval scores against submitted ground truth.
type Metrics struct {
	NMI     float64 `json:"nmi"`             // normalized mutual information
	ARI     float64 `json:"ari"`             // adjusted Rand index
	Purity  float64 `json:"purity"`          // majority-class purity
	Labeled int     `json:"labeled_objects"` // objects the truth map covered
}

// Result is a finished job's fitted model.
type Result struct {
	ID              string             `json:"id"`                // job id
	K               int                `json:"k"`                 // number of clusters
	Objects         []ObjectResult     `json:"objects"`           // per-object assignments and memberships
	Gamma           map[string]float64 `json:"gamma"`             // relation name → learned strength γ(r)
	Objective       float64            `json:"objective"`         // final g₁ (Eq. 9)
	PseudoLL        float64            `json:"pseudo_ll"`         // final g′₂ (Eq. 14)
	EMIterations    int                `json:"em_iterations"`     // total EM iterations executed
	OuterIterations int                `json:"outer_iterations"`  // outer alternations actually run
	Metrics         *Metrics           `json:"metrics,omitempty"` // eval vs submitted truth, if any
}

// Model rebuilds a local genclus.Model from the fetched result, so a fit
// computed by the service can seed a local Model.Refit. The service result
// carries Θ (per object) and γ but not the fitted attribute component
// models, so a refit from the rebuilt model warm-starts memberships and
// strengths while re-initializing attribute models from the data — still a
// fraction of a cold start on a converged source fit.
func (r *Result) Model() (*genclus.Model, error) {
	theta := make([][]float64, len(r.Objects))
	ids := make([]string, len(r.Objects))
	for i, o := range r.Objects {
		theta[i] = o.Theta
		ids[i] = o.ID
	}
	res := &genclus.Result{
		K:               r.K,
		Theta:           theta,
		Gamma:           r.Gamma,
		Objective:       r.Objective,
		PseudoLL:        r.PseudoLL,
		EMIterations:    r.EMIterations,
		OuterIterations: r.OuterIterations,
	}
	return genclus.NewModel(res, ids)
}

// Health is the service's liveness report.
type Health struct {
	Status        string         `json:"status"`         // "ok" while serving
	UptimeSeconds float64        `json:"uptime_seconds"` // seconds since start
	Workers       int            `json:"workers"`        // fit worker pool size
	Networks      int            `json:"networks"`       // stored (non-evicted) networks
	Jobs          map[string]int `json:"jobs"`           // job count per state
}

// UploadNetwork serializes and uploads a network, returning its server-side
// ID for job submissions.
func (c *Client) UploadNetwork(ctx context.Context, net *genclus.Network) (*NetworkInfo, error) {
	data, err := json.Marshal(net)
	if err != nil {
		return nil, fmt.Errorf("client: encode network: %w", err)
	}
	return c.UploadNetworkJSON(ctx, data)
}

// UploadNetworkJSON uploads an already-serialized network document (the
// format written by Network.SaveFile / cmd/datagen).
func (c *Client) UploadNetworkJSON(ctx context.Context, data []byte) (*NetworkInfo, error) {
	var out NetworkInfo
	// An upload is not idempotent from the server's perspective (each
	// attempt registers a new network), but retrying after a transient
	// failure only risks an orphaned upload that the TTL sweeper collects.
	if err := c.do(ctx, http.MethodPost, "/v1/networks", data, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob submits a fit. Submission is NOT retried: a retry after an
// ambiguous failure could double-schedule the fit. Callers who want
// resilience should check for the job by listing health or resubmit
// explicitly.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (*Job, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode job spec: %w", err)
	}
	var out Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", payload, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches a job's current state and progress.
func (c *Client) JobStatus(ctx context.Context, jobID string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's fitted model. The service answers 409
// while the job is still queued or running; use WaitForResult to block
// until it is done.
func (c *Client) JobResult(ctx context.Context, jobID string) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/result", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob cancels a queued or running job (idempotent: cancelling a
// terminal job is a no-op) and returns the resulting status.
func (c *Client) CancelJob(ctx context.Context, jobID string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the service's liveness and queue statistics.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobError reports a job that reached a terminal state other than done.
type JobError struct {
	JobID   string   // the job that terminated
	State   JobState // its terminal state (failed or cancelled)
	Message string   // server-side failure reason, if any
}

// Error implements the error interface.
func (e *JobError) Error() string {
	return fmt.Sprintf("genclusd: job %s %s: %s", e.JobID, e.State, e.Message)
}

// WaitForResult blocks until the job reaches a terminal state and returns
// its result. It consumes the live event stream when the server provides
// one and degrades to status polling otherwise; either way it returns as
// soon as ctx is cancelled. A failed or cancelled job surfaces as a
// *JobError.
func (c *Client) WaitForResult(ctx context.Context, jobID string) (*Result, error) {
	final, err := c.waitTerminal(ctx, jobID)
	if err != nil {
		return nil, err
	}
	if final.State != StateDone {
		return nil, &JobError{JobID: jobID, State: final.State, Message: final.Error}
	}
	return c.JobResult(ctx, jobID)
}

// waitTerminal blocks until the job's state is terminal, preferring the
// event stream over polling.
func (c *Client) waitTerminal(ctx context.Context, jobID string) (*Job, error) {
	var final *Job
	err := c.StreamEvents(ctx, jobID, func(ev Event) error {
		if ev.Job != nil && ev.Job.State.Terminal() {
			final = ev.Job
			return ErrStopStreaming
		}
		return nil
	})
	switch {
	case err == nil && final != nil:
		return final, nil
	case err == nil:
		// Stream ended without a terminal state (server closed early);
		// fall through to polling.
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return nil, err
	case IsNotFound(err):
		// Ambiguous: the job may be unknown, or the server may predate the
		// /events endpoint (the /v1 surface is additive-only, so both are
		// in-policy). One status request disambiguates.
		job, serr := c.JobStatus(ctx, jobID)
		if serr != nil {
			return nil, serr
		}
		if job.State.Terminal() {
			return job, nil
		}
	}
	// Polling fallback: the stream failed for a reason worth surviving
	// (proxy stripped streaming, connection dropped mid-fit, older server).
	for {
		job, err := c.JobStatus(ctx, jobID)
		if err != nil {
			return nil, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.pollInterval):
		}
	}
}

// do issues one API request with bounded retries on transient failures.
// Non-2xx responses become *APIError; only idempotent requests and
// transient statuses (502/503/504) are retried.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, err := c.once(ctx, method, path, body)
		if err == nil {
			if out == nil || len(data) == 0 {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
			}
			return nil
		}
		lastErr = err
		if !idempotent || attempt >= c.maxRetries || !transient(err) || ctx.Err() != nil {
			return lastErr
		}
		// Cap the exponent so a generous retry budget cannot overflow
		// time.Duration into an instant-retry hot loop.
		shift := attempt
		if shift > 16 {
			shift = 16
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.retryBase << shift):
		}
	}
}

// once issues a single HTTP request and maps non-2xx to *APIError.
func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(data)}
	}
	return data, nil
}

// errorMessage extracts the server's {"error": ...} message, falling back
// to the raw body.
func errorMessage(body []byte) string {
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}

// transient reports whether an error is worth retrying: network-level
// failures and gateway-ish statuses.
func transient(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Anything that never produced an HTTP status (dial failure, reset,
	// dropped connection) — but not a context cancellation.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}
