package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"genclus/client"
)

// deadEndpoint reserves a port, closes it, and returns a base URL whose
// dials are refused deterministically.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

// fakeNode is a scriptable endpoint that answers assigns with a canned
// response (or a scripted status) and counts its hits.
type fakeNode struct {
	assigns    atomic.Int64
	lists      atomic.Int64
	deletes    atomic.Int64
	failStatus atomic.Int64 // non-zero: answer assigns with this status
	srv        *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{id}/assign", func(w http.ResponseWriter, r *http.Request) {
		n.assigns.Add(1)
		if st := n.failStatus.Load(); st != 0 {
			w.WriteHeader(int(st))
			if st == http.StatusNotFound {
				json.NewEncoder(w).Encode(map[string]string{"error": "no such model", "code": "model_not_found"})
			}
			return
		}
		json.NewEncoder(w).Encode(client.AssignResponse{
			ModelID:     r.PathValue("id"),
			K:           2,
			Assignments: []client.Assignment{{ID: name, Cluster: 0, Theta: []float64{1, 0}}},
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		n.lists.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"models": []any{}})
	})
	mux.HandleFunc("DELETE /v1/models/{id}", func(w http.ResponseWriter, r *http.Request) {
		n.deletes.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// TestTransportErrorsAreUnavailable pins the SDK's transient-error
// taxonomy: a refused connection matches ErrUnavailable (so callers — and
// MultiEndpoint — can fail over on it), while a canceled context does not
// (giving up is not the endpoint's fault).
func TestTransportErrorsAreUnavailable(t *testing.T) {
	c := client.New(deadEndpoint(t), client.WithRetries(0, 0))
	_, err := c.ListModels(context.Background())
	if err == nil {
		t.Fatal("dead listener: want error")
	}
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("dead listener: errors.Is(err, ErrUnavailable) = false for %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.ListModels(ctx)
	if err == nil {
		t.Fatal("canceled context: want error")
	}
	if errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("canceled context must not read as unavailable: %v", err)
	}
}

// TestAPIErrorUnavailable pins the status side of the taxonomy: gateway-ish
// 5xx responses match ErrUnavailable, typed 4xx responses do not.
func TestAPIErrorUnavailable(t *testing.T) {
	n := newFakeNode(t, "n")
	c := client.New(n.srv.URL, client.WithRetries(0, 0))

	n.failStatus.Store(http.StatusServiceUnavailable)
	_, err := c.AssignObjects(context.Background(), "m", client.AssignRequest{})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("503: errors.Is(err, ErrUnavailable) = false for %v", err)
	}

	n.failStatus.Store(http.StatusNotFound)
	_, err = c.AssignObjects(context.Background(), "m", client.AssignRequest{})
	if err == nil || errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("404 must not read as unavailable: %v", err)
	}
	if !client.IsNotFound(err) {
		t.Fatalf("404 lost its typed identity: %v", err)
	}
}

func TestMultiEndpointSpreadsAssigns(t *testing.T) {
	primary := newFakeNode(t, "primary")
	r1 := newFakeNode(t, "r1")
	r2 := newFakeNode(t, "r2")
	me := client.NewMultiEndpoint(primary.srv.URL, []string{r1.srv.URL, r2.srv.URL})

	for i := 0; i < 10; i++ {
		if _, err := me.AssignObjects(context.Background(), "m", client.AssignRequest{}); err != nil {
			t.Fatalf("assign %d: %v", i, err)
		}
	}
	if r1.assigns.Load() != 5 || r2.assigns.Load() != 5 {
		t.Fatalf("round-robin spread: r1 %d, r2 %d, want 5/5", r1.assigns.Load(), r2.assigns.Load())
	}
	if primary.assigns.Load() != 0 {
		t.Fatalf("primary served %d assigns with healthy replicas", primary.assigns.Load())
	}
}

// TestMultiEndpointFailoverAndQuarantine kills one replica: traffic fails
// over without surfacing errors, the dead replica is quarantined out of
// rotation, and it rejoins after recovering.
func TestMultiEndpointFailoverAndQuarantine(t *testing.T) {
	primary := newFakeNode(t, "primary")
	r1 := newFakeNode(t, "r1")
	r2 := newFakeNode(t, "r2")
	me := client.NewMultiEndpoint(primary.srv.URL, []string{r1.srv.URL, r2.srv.URL},
		client.WithQuarantine(50*time.Millisecond, 100*time.Millisecond))

	r1.failStatus.Store(http.StatusServiceUnavailable)
	for i := 0; i < 6; i++ {
		if _, err := me.AssignObjects(context.Background(), "m", client.AssignRequest{}); err != nil {
			t.Fatalf("assign %d during replica outage: %v", i, err)
		}
	}
	// r1 ate at most one probe before quarantine pulled it from rotation;
	// r2 absorbed the rest and the primary stayed untouched.
	if got := r1.assigns.Load(); got > 2 {
		t.Fatalf("quarantined replica kept receiving traffic: %d hits", got)
	}
	if r2.assigns.Load() < 4 {
		t.Fatalf("surviving replica hits: %d, want >= 4", r2.assigns.Load())
	}
	if primary.assigns.Load() != 0 {
		t.Fatalf("primary served %d assigns with a replica alive", primary.assigns.Load())
	}
	var quarantined int
	for _, ep := range me.Endpoints() {
		if ep.Quarantined {
			quarantined++
			if ep.ConsecutiveFailures == 0 || ep.QuarantinedUntil.IsZero() {
				t.Fatalf("quarantined endpoint status incomplete: %+v", ep)
			}
		}
	}
	if quarantined != 1 {
		t.Fatalf("quarantined endpoints: %d, want 1", quarantined)
	}

	// Recovery: once the hold expires, the healed replica re-enters
	// rotation and serves again.
	r1.failStatus.Store(0)
	time.Sleep(120 * time.Millisecond)
	before := r1.assigns.Load()
	for i := 0; i < 4; i++ {
		if _, err := me.AssignObjects(context.Background(), "m", client.AssignRequest{}); err != nil {
			t.Fatalf("assign %d after recovery: %v", i, err)
		}
	}
	if r1.assigns.Load() == before {
		t.Fatal("recovered replica never rejoined rotation")
	}
}

// TestMultiEndpointPrimaryFallback downs every replica: assigns fall back
// to the primary instead of failing.
func TestMultiEndpointPrimaryFallback(t *testing.T) {
	primary := newFakeNode(t, "primary")
	me := client.NewMultiEndpoint(primary.srv.URL, []string{deadEndpoint(t), deadEndpoint(t)})

	for i := 0; i < 3; i++ {
		out, err := me.AssignObjects(context.Background(), "m", client.AssignRequest{})
		if err != nil {
			t.Fatalf("assign %d with dead replicas: %v", i, err)
		}
		if out.Assignments[0].ID != "primary" {
			t.Fatalf("assign served by %q, want primary", out.Assignments[0].ID)
		}
	}
	if primary.assigns.Load() != 3 {
		t.Fatalf("primary hits: %d, want 3", primary.assigns.Load())
	}
}

// TestMultiEndpointEverythingDown checks the terminal case: with every
// endpoint refusing connections the caller gets the last transport error,
// still typed ErrUnavailable.
func TestMultiEndpointEverythingDown(t *testing.T) {
	me := client.NewMultiEndpoint(deadEndpoint(t), []string{deadEndpoint(t)},
		client.WithEndpointOptions(client.WithRetries(0, 0)))
	_, err := me.AssignObjects(context.Background(), "m", client.AssignRequest{})
	if err == nil {
		t.Fatal("all endpoints dead: want error")
	}
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("all-dead error not ErrUnavailable: %v", err)
	}
}

// TestMultiEndpointTypedErrorsReturnImmediately pins the consistency
// decision: a typed 404 (model not synced yet, or genuinely absent) is the
// caller's to handle — failing over would just mask replication lag.
func TestMultiEndpointTypedErrorsReturnImmediately(t *testing.T) {
	primary := newFakeNode(t, "primary")
	r1 := newFakeNode(t, "r1")
	r1.failStatus.Store(http.StatusNotFound)
	me := client.NewMultiEndpoint(primary.srv.URL, []string{r1.srv.URL})

	_, err := me.AssignObjects(context.Background(), "missing", client.AssignRequest{})
	if !client.IsNotFound(err) {
		t.Fatalf("want typed not-found, got %v", err)
	}
	if primary.assigns.Load() != 0 {
		t.Fatal("typed 4xx failed over to the primary")
	}
	if me.Endpoints()[0].Quarantined {
		t.Fatal("typed 4xx quarantined the replica")
	}
}

// TestMultiEndpointRoutesWritesToPrimary checks the write split: model
// admin goes to the primary even with replicas configured.
func TestMultiEndpointRoutesWritesToPrimary(t *testing.T) {
	primary := newFakeNode(t, "primary")
	r1 := newFakeNode(t, "r1")
	me := client.NewMultiEndpoint(primary.srv.URL, []string{r1.srv.URL})

	if _, err := me.ListModels(context.Background()); err != nil {
		t.Fatalf("ListModels: %v", err)
	}
	if err := me.DeleteModel(context.Background(), "m"); err != nil {
		t.Fatalf("DeleteModel: %v", err)
	}
	if primary.lists.Load() != 1 || primary.deletes.Load() != 1 {
		t.Fatalf("primary hits: lists %d, deletes %d, want 1/1", primary.lists.Load(), primary.deletes.Load())
	}
	if r1.lists.Load() != 0 || r1.deletes.Load() != 0 {
		t.Fatal("writes leaked to a replica")
	}
	if me.Primary() == nil {
		t.Fatal("Primary() returned nil")
	}
}
