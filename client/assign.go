package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// AssignLink is one directed link from a query object to a known object of
// the model, under a named relation.
type AssignLink struct {
	Relation string  `json:"rel"` // relation name with a learned strength in the model
	To       string  `json:"to"`  // ID of a known (training) object
	Weight   float64 `json:"w"`   // positive finite link weight
}

// AssignTermCount is one sparse term-count entry of a categorical
// observation (same shape as the network document's term counts).
type AssignTermCount struct {
	Term  int     `json:"t"` // term index within the model's vocabulary
	Count float64 `json:"c"` // positive finite count
}

// AssignObject describes one out-of-sample object to fold into the model:
// links into the known network plus optional partial attribute
// observations. An object with neither links nor observations receives the
// uniform posterior.
type AssignObject struct {
	ID      string                       `json:"id,omitempty"`      // caller-side identifier echoed on the assignment
	Links   []AssignLink                 `json:"links,omitempty"`   // links to known objects
	Terms   map[string][]AssignTermCount `json:"terms,omitempty"`   // categorical attribute name → term counts
	Numeric map[string][]float64         `json:"numeric,omitempty"` // numeric attribute name → observations
}

// AssignRequest is the POST /v1/models/{id}/assign body.
type AssignRequest struct {
	Objects []AssignObject `json:"objects"` // query objects (bounded by the server's assign batch limit)
	// TopK sizes each assignment's top list (default 1, capped at the
	// model's K).
	TopK int `json:"top_k,omitempty"`
}

// ClusterProb is one entry of an assignment's top-k list.
type ClusterProb struct {
	Cluster int     `json:"cluster"` // cluster index
	P       float64 `json:"p"`       // posterior probability
}

// Assignment is one scored query object.
type Assignment struct {
	ID      string        `json:"id,omitempty"` // echo of the query object's id
	Cluster int           `json:"cluster"`      // argmax hard assignment
	Theta   []float64     `json:"theta"`        // soft posterior row (sums to 1)
	Top     []ClusterProb `json:"top"`          // top-k clusters, descending probability
	// FoldInIters is the number of fold-in iterations the query took: 1
	// when the posterior is closed-form (no attribute observations), more
	// when the query's own mixing proportions were iterated to a fixed
	// point.
	FoldInIters int `json:"fold_in_iters"`
}

// AssignResponse is the assign endpoint's reply.
type AssignResponse struct {
	ModelID     string       `json:"model_id"`    // the model the objects were folded into
	K           int          `json:"k"`           // the model's cluster count
	Assignments []Assignment `json:"assignments"` // one per query object, in request order
	// Batched reports whether this request shared its inference pass with
	// at least one concurrent request (server-side micro-batching).
	Batched bool `json:"batched"`
}

// AssignStats are the server's online-inference counters from /healthz:
// request/object volume, the micro-batching coalescing ratio
// (BatchedRequests/Requests), and per-model engine cache effectiveness.
type AssignStats struct {
	Requests          int64 `json:"requests"`            // assign requests served
	Objects           int64 `json:"objects"`             // query objects scored
	BatchedRequests   int64 `json:"batched_requests"`    // requests that shared an inference pass
	EnginePasses      int64 `json:"engine_passes"`       // shared inference passes executed
	EngineCacheHits   int64 `json:"engine_cache_hits"`   // engine cache hits (by snapshot digest)
	EngineCacheMisses int64 `json:"engine_cache_misses"` // engine cache misses (engines built)
	ShedRequests      int64 `json:"shed_requests"`       // requests rejected 429 by admission control
}

// AssignObjects folds a batch of new objects into a registered model
// without refitting (POST /v1/models/{id}/assign): each object is
// described by links to known objects and optional partial attribute
// observations, and receives the model's posterior — soft memberships plus
// top-k hard assignments. Assignment is read-only and deterministic, so
// the call retries on transient failures like other idempotent requests.
// Bad input comes back as an *APIError with a 4xx status (413 for batch or
// per-object limit overflows, 400 for unresolvable names or malformed
// values).
func (c *Client) AssignObjects(ctx context.Context, modelID string, req AssignRequest) (*AssignResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode assign request: %w", err)
	}
	var out AssignResponse
	if err := c.do(ctx, http.MethodPost, "/v1/models/"+modelID+"/assign", payload, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
