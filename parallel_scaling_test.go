package genclus_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"genclus/internal/bench"
)

// TestEMIterationParallelScaling asserts the NUMA-scale throughput target:
// on a host with at least 16 cores, steady-state EM iterations at P=16 must
// run ≥ 3× faster than serial. The padded per-worker accumulators, the
// persistent pool and the parallelized chunk merge exist for exactly this
// number; the bitwise goldens (TestFitGoldenBitwiseChecksum and its float32
// sibling) pin that the speedup changes no results.
//
// The test is skip-gated on core count because on a smaller host P=16
// measures oversubscription, not scaling — CI enforces the per-parallelism
// latency series through benchgate instead (em-iteration/midsize-p4, -p16
// in BENCH_fit.json). Set GENCLUS_FORCE_SCALING_TEST=1 to run it anyway.
func TestEMIterationParallelScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 16 && os.Getenv("GENCLUS_FORCE_SCALING_TEST") == "" {
		t.Skipf("host has %d CPUs; need ≥ 16 for a meaningful P=16 scaling measurement", runtime.NumCPU())
	}

	measure := func(p int) time.Duration {
		eb, err := bench.NewEMIterationBenchParallel(p)
		if err != nil {
			t.Fatal(err)
		}
		defer eb.Close()
		const iters = 20
		best := time.Duration(1<<63 - 1)
		// Best-of-3 batches: scaling assertions on shared hardware need the
		// cleanest batch, not the average polluted by scheduler noise.
		for batch := 0; batch < 3; batch++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				eb.RunIteration()
			}
			if d := time.Since(start) / iters; d < best {
				best = d
			}
		}
		return best
	}

	serial := measure(1)
	wide := measure(16)
	speedup := float64(serial) / float64(wide)
	t.Logf("EM iteration: P=1 %v, P=16 %v (%.2fx)", serial, wide, speedup)
	if speedup < 3 {
		t.Errorf("P=16 speedup = %.2fx, want ≥ 3x", speedup)
	}
}
